// rawstat — run a configured Raw Router scenario and watch it live.
//
// Prints a refreshing text dashboard (per-port Gbps/Mpps, drop %, latency
// percentiles, per-tile busy/blocked/idle) sourced from the MetricRegistry
// the router exports into, and can dump the full registry as JSON/CSV or a
// packet-lifecycle Chrome trace (chrome://tracing / Perfetto).
//
//   rawstat                         # default: 4 ports, uniform, 256 B, load 1.0
//   rawstat --bytes 1024 --pattern permutation
//   rawstat --json > metrics.json   # machine-readable registry dump
//   rawstat --trace trace.json      # packet-lifecycle Chrome trace
//   rawstat --chaos flip+stall      # seeded fault injection + faults panel
//   rawstat --profile               # live engine panel: where wall time goes
//
// With --profile an engine profiler rides along (common/profiler.h): the
// dashboard grows a per-phase wall-clock attribution panel, --json includes
// the profile/... metric section, and --trace merges the engine-profile
// counter tracks (from the flight recorder, one snapshot per interval) into
// the packet-lifecycle Chrome trace.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "cluster/chaos.h"
#include "cluster/fabric.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/trace_event.h"
#include "router/chaos.h"
#include "router/raw_router.h"
#include "sim/fault_plan.h"

namespace {

using raw::common::Cycle;
using raw::common::MetricRegistry;

struct Args {
  Cycle cycles = 200000;
  Cycle interval = 0;  // 0: cycles / 10
  raw::common::ByteCount bytes = 256;
  double load = 1.0;
  raw::net::DestPattern pattern = raw::net::DestPattern::kUniform;
  std::uint64_t seed = 1;
  std::uint32_t quantum = 256;
  bool json = false;
  bool csv = false;
  bool channel_stats = false;
  bool no_refresh = false;
  const char* trace_path = nullptr;
  std::size_t trace_budget = 1 << 16;
  const char* chaos = nullptr;  // fault mix, e.g. "flip+stall"
  std::uint64_t chaos_seed = 1;
  int threads = 0;  // execution-engine workers (0: RAWSIM_THREADS)
  Cycle lookahead = 0;  // batched-quantum cap (0: RAWSIM_LOOKAHEAD/auto)
  bool links = false;     // reliable-link layer (CRC + NACK/retransmit)
  bool recovery = false;  // fault-adaptive crossbar reconfiguration
  bool profile = false;   // engine profiler + live attribution panel
  int cluster_chips = 0;      // > 0: run a leaf-spine cluster instead
  double cluster_remote = 0.5;  // fraction of traffic crossing chips
};

void usage() {
  std::printf(
      "usage: rawstat [options]\n"
      "  --cycles N        chip cycles to run (default 200000)\n"
      "  --interval N      dashboard refresh interval in cycles (default cycles/10)\n"
      "  --bytes B         fixed packet size in bytes (default 256)\n"
      "  --load L          offered load in [0,1] (default 1.0)\n"
      "  --pattern P       uniform | permutation (default uniform)\n"
      "  --quantum W       max words per routing quantum (default 256)\n"
      "  --seed S          traffic RNG seed (default 1)\n"
      "  --json            dump the full metric registry as JSON (no dashboard)\n"
      "  --csv             dump the full metric registry as CSV (no dashboard)\n"
      "  --trace FILE      write a packet-lifecycle Chrome trace to FILE\n"
      "  --trace-budget N  tracer ring-buffer size in events (default 65536)\n"
      "  --chaos MIX       inject a seeded fault mix while running\n"
      "                    (flip | stall | freeze | overrun | permafreeze,\n"
      "                    '+'-separated; shows the faults/... panel)\n"
      "  --chaos-seed S    fault-schedule RNG seed (default 1)\n"
      "  --links           reliable links: per-word CRC + NACK/retransmit\n"
      "                    (bit flips become retransmits; recovery panel)\n"
      "  --recovery        fault-adaptive reconfiguration: a permanently\n"
      "                    frozen tile is routed around (Degraded) instead\n"
      "                    of stalling the fabric\n"
      "  --profile         attach the engine profiler: live per-phase\n"
      "                    wall-clock attribution panel, profile/... metrics\n"
      "                    in --json, engine tracks merged into --trace\n"
      "  --cluster N       run an N-chip leaf-spine cluster fabric instead\n"
      "                    of a single chip: per-chip throughput, link\n"
      "                    occupancy, and slowest-chip epoch lag panels\n"
      "                    (honours --cycles/--bytes/--load/--seed/--threads;\n"
      "                    --links arms CRC+retransmit trunks, --recovery\n"
      "                    the watchdog + fail-over reroute, --chaos takes\n"
      "                    cluster mixes corrupt|stall|cut|freeze and shows\n"
      "                    the recovery panel)\n"
      "  --remote F        cluster mode: fraction of traffic whose\n"
      "                    destination is on another chip (default 0.5)\n"
      "  --channel-stats   sample per-channel occupancy/backpressure\n"
      "  --threads T       execution-engine worker threads (default: \n"
      "                    RAWSIM_THREADS, else serial; results identical)\n"
      "  --lookahead K     batched-quantum lookahead cap (0: RAWSIM_LOOKAHEAD,\n"
      "                    else engine default; 1: cycle-granular; results\n"
      "                    identical at every value)\n"
      "  --no-refresh      append dashboard frames instead of redrawing\n");
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--cycles")) {
      a.cycles = std::strtoull(next("--cycles"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--interval")) {
      a.interval = std::strtoull(next("--interval"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--bytes")) {
      a.bytes = std::strtoull(next("--bytes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--load")) {
      a.load = std::strtod(next("--load"), nullptr);
    } else if (!std::strcmp(argv[i], "--pattern")) {
      const char* p = next("--pattern");
      if (!std::strcmp(p, "uniform")) {
        a.pattern = raw::net::DestPattern::kUniform;
      } else if (!std::strcmp(p, "permutation")) {
        a.pattern = raw::net::DestPattern::kPermutation;
      } else {
        std::fprintf(stderr, "unknown pattern '%s'\n", p);
        std::exit(2);
      }
    } else if (!std::strcmp(argv[i], "--quantum")) {
      a.quantum = static_cast<std::uint32_t>(
          std::strtoul(next("--quantum"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--seed")) {
      a.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--json")) {
      a.json = true;
    } else if (!std::strcmp(argv[i], "--csv")) {
      a.csv = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      a.trace_path = next("--trace");
    } else if (!std::strcmp(argv[i], "--trace-budget")) {
      a.trace_budget = std::strtoull(next("--trace-budget"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--chaos")) {
      a.chaos = next("--chaos");
    } else if (!std::strcmp(argv[i], "--chaos-seed")) {
      a.chaos_seed = std::strtoull(next("--chaos-seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--links")) {
      a.links = true;
    } else if (!std::strcmp(argv[i], "--recovery")) {
      a.recovery = true;
    } else if (!std::strcmp(argv[i], "--profile")) {
      a.profile = true;
    } else if (!std::strcmp(argv[i], "--cluster")) {
      a.cluster_chips = std::atoi(next("--cluster"));
    } else if (!std::strcmp(argv[i], "--remote")) {
      a.cluster_remote = std::strtod(next("--remote"), nullptr);
    } else if (!std::strcmp(argv[i], "--channel-stats")) {
      a.channel_stats = true;
    } else if (!std::strcmp(argv[i], "--threads")) {
      a.threads = std::atoi(next("--threads"));
    } else if (!std::strcmp(argv[i], "--lookahead")) {
      const char* v = next("--lookahead");
      char* end = nullptr;
      a.lookahead = std::strtoull(v, &end, 10);
      if (v[0] == '-' || end == v || *end != '\0') {
        std::fprintf(stderr, "bad --lookahead '%s'\n", v);
        std::exit(2);
      }
    } else if (!std::strcmp(argv[i], "--no-refresh")) {
      a.no_refresh = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      usage();
      std::exit(2);
    }
  }
  if (a.interval == 0) a.interval = a.cycles / 10 > 0 ? a.cycles / 10 : a.cycles;
  return a;
}

/// Publishes the Figure 7-3-style per-tile utilization of the last traced
/// window into the registry, so the dashboard reads everything from one
/// place.
void export_tile_utilization(const raw::sim::Trace& trace, MetricRegistry& reg) {
  if (!trace.enabled()) return;
  for (int t = 0; t < trace.num_tiles(); ++t) {
    const auto u = trace.utilization(t);
    const std::string base = "router/chip/tile" + std::to_string(t);
    reg.gauge(base + "/busy_frac").set(u.busy);
    reg.gauge(base + "/blocked_frac").set(u.blocked);
    reg.gauge(base + "/idle_frac").set(u.idle);
  }
}

void print_dashboard(const Args& args, const MetricRegistry& reg, Cycle now,
                     bool redraw) {
  if (redraw) std::printf("\x1b[H\x1b[J");
  std::printf("rawstat — %s traffic, %llu B packets, load %.2f, cycle %llu/%llu\n\n",
              args.pattern == raw::net::DestPattern::kUniform ? "uniform"
                                                              : "permutation",
              static_cast<unsigned long long>(args.bytes), args.load,
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(args.cycles));

  std::printf("%-5s %8s %7s %7s %8s %8s %8s %8s\n", "port", "Gbps", "Mpps",
              "drop%", "p50", "p95", "p99", "max");
  for (int p = 0; p < raw::router::kNumPorts; ++p) {
    const std::string base = "router/port" + std::to_string(p);
    std::printf("%-5d %8.2f %7.3f %6.2f%% %8.0f %8.0f %8.0f %8.0f\n", p,
                reg.gauge_value(base + "/gbps"), reg.gauge_value(base + "/mpps"),
                100.0 * reg.gauge_value(base + "/drop_fraction"),
                reg.gauge_value(base + "/latency/p50"),
                reg.gauge_value(base + "/latency/p95"),
                reg.gauge_value(base + "/latency/p99"),
                reg.gauge_value(base + "/latency/max"));
  }
  std::printf("%-5s %8.2f %7.3f   (latency percentiles in cycles)\n", "all",
              reg.gauge_value("router/gbps"), reg.gauge_value("router/mpps"));

  std::printf("\nper-tile busy/blocked/idle %% (last %llu-cycle window):\n",
              static_cast<unsigned long long>(args.interval));
  for (int row = 0; row < 4; ++row) {
    std::printf("  ");
    for (int col = 0; col < 4; ++col) {
      const int t = row * 4 + col;
      const std::string base = "router/chip/tile" + std::to_string(t);
      std::printf("t%-2d %3.0f/%3.0f/%3.0f   ", t,
                  100.0 * reg.gauge_value(base + "/busy_frac"),
                  100.0 * reg.gauge_value(base + "/blocked_frac"),
                  100.0 * reg.gauge_value(base + "/idle_frac"));
    }
    std::printf("\n");
  }

  const std::uint64_t errors = reg.counter_value("router/errors");
  if (errors > 0) {
    std::printf("\nVALIDATION ERRORS: %llu\n",
                static_cast<unsigned long long>(errors));
  }
  std::fflush(stdout);
}

/// The fault-injection / self-protection panel: shown whenever a fault plan
/// is attached (every counter sourced from the registry's faults/... and
/// router/... entries the router exports).
void print_fault_panel(const MetricRegistry& reg) {
  const auto c = [&reg](const char* name) {
    return static_cast<unsigned long long>(reg.counter_value(name));
  };
  std::printf(
      "\nfaults: %llu injected (flips %llu applied / %llu missed, "
      "stalls %llu, freezes %llu, overruns %llu; frozen-tile cycles %llu)\n",
      c("faults/injected"), c("faults/bit_flips"), c("faults/bit_flips_missed"),
      c("faults/link_stalls"), c("faults/tile_freezes"),
      c("faults/overrun_bursts"), c("faults/frozen_tile_cycles"));
  std::printf(
      "self-protection: malformed %llu  resyncs %llu  invalid %llu  "
      "lost %llu  watchdog trips %llu\n",
      c("router/conservation/ingress_drops"),
      c("router/port0/egress/resyncs") + c("router/port1/egress/resyncs") +
          c("router/port2/egress/resyncs") + c("router/port3/egress/resyncs"),
      c("router/conservation/invalid"), c("router/conservation/lost"),
      c("router/watchdog/trips"));
  // With reliable links on, split the damage into what the link layer won
  // back (retransmitted words) versus what the fabric still lost.
  if (reg.counter_value("faults/recovered/retransmits") > 0 ||
      reg.counter_value("faults/recovered/delivered_corrupt") > 0) {
    std::printf("recovered-vs-lost: %llu words retransmitted clean, "
                "%llu delivered corrupt, %llu packets lost\n",
                c("faults/recovered/retransmits"),
                c("faults/recovered/delivered_corrupt"),
                c("router/conservation/lost"));
  }
}

/// The recovery panel: reliable-link counters plus the fault-adaptive
/// reconfiguration state (shown when --links/--recovery is active or the
/// fabric has already degraded).
void print_recovery_panel(const MetricRegistry& reg,
                          const raw::router::RawRouter& router) {
  const auto c = [&reg](const char* name) {
    return static_cast<unsigned long long>(reg.counter_value(name));
  };
  std::printf(
      "recovery: links %llu retransmits / %llu corrupt / %llu stall cycles; "
      "reconfigurations %llu (schedule gen %llu, written off %llu)\n",
      c("faults/recovered/retransmits"),
      c("faults/recovered/delivered_corrupt"),
      c("faults/recovered/stall_cycles"), c("router/recovery/recoveries"),
      c("router/recovery/schedule_generation"),
      c("router/recovery/written_off"));
  if (router.degraded()) {
    std::string tiles;
    for (const int t : router.dead_tiles()) {
      if (!tiles.empty()) tiles += ", ";
      tiles += std::to_string(t);
    }
    std::printf("status: DEGRADED — routing around dead tile(s) [%s]\n",
                tiles.c_str());
  } else {
    std::printf("status: full fabric (no dead tiles)\n");
  }
}

/// The engine-profile panel (--profile): per-phase wall-clock attribution
/// aggregated across workers, plus the sparse-efficiency counters. Reads the
/// Profiler directly — relaxed per-worker accumulators are safe to aggregate
/// between run chunks.
void print_profile_panel(const raw::common::Profiler& prof) {
  using raw::common::ProfPhase;
  const std::uint64_t wall = prof.wall_ns();
  const double denom =
      wall > 0 ? static_cast<double>(wall) * prof.workers() : 1.0;
  std::printf(
      "\nengine: %d worker%s, %.1f ms profiled wall, coverage %.1f%%, "
      "barrier wait %.1f%%\n",
      prof.workers(), prof.workers() == 1 ? "" : "s",
      static_cast<double>(wall) / 1e6, 100.0 * prof.coverage(),
      100.0 * prof.barrier_wait_share());
  std::printf("  phases:");
  for (int p = 0; p < raw::common::kNumProfPhases; ++p) {
    const auto t = prof.phase_total(static_cast<ProfPhase>(p));
    std::printf(" %s %.1f%%",
                raw::common::prof_phase_name(static_cast<ProfPhase>(p)),
                100.0 * static_cast<double>(t.ns) / denom);
  }
  std::printf("\n");
  const std::uint64_t batches = prof.commit_batches();
  std::printf(
      "  sparse: %llu parks, %llu wakes, %llu commit batches "
      "(avg %.1f dirty), %llu dense sweeps / %llu sparse cycles, "
      "%llu flight snapshots\n",
      static_cast<unsigned long long>(prof.parks()),
      static_cast<unsigned long long>(prof.wakes()),
      static_cast<unsigned long long>(batches),
      batches > 0 ? static_cast<double>(prof.dirty_channels()) /
                        static_cast<double>(batches)
                  : 0.0,
      static_cast<unsigned long long>(prof.dense_sweeps()),
      static_cast<unsigned long long>(prof.sparse_cycles()),
      static_cast<unsigned long long>(prof.flight_recorded()));
  // Batched-quantum amortization: how many simulated cycles each barrier
  // rendezvous covers on average (1.00 = cycle-granular, no batching).
  const std::uint64_t quanta = prof.quanta();
  if (quanta > 0) {
    std::printf(
        "  quanta: %llu quanta / %llu cycles, effective quantum %.2f "
        "(max %llu) — barrier cost amortized %.1fx\n",
        static_cast<unsigned long long>(quanta),
        static_cast<unsigned long long>(prof.quantum_cycles()),
        static_cast<double>(prof.quantum_cycles()) /
            static_cast<double>(quanta),
        static_cast<unsigned long long>(prof.max_quantum()),
        static_cast<double>(prof.quantum_cycles()) /
            static_cast<double>(quanta));
  }
}

/// The cluster dashboard (--cluster N): aggregate throughput plus the three
/// panels the fabric exports — per-chip throughput, inter-chip link
/// occupancy, and the slowest-chip epoch lag (thread-per-chip load balance).
void print_cluster_dashboard(const Args& args, const MetricRegistry& reg,
                             const raw::cluster::ClusterFabric& fabric,
                             Cycle now, bool redraw) {
  if (redraw) std::printf("\x1b[H\x1b[J");
  const auto c = [&reg](const std::string& name) {
    return static_cast<unsigned long long>(reg.counter_value(name));
  };
  std::printf(
      "rawstat --cluster — leaf-spine, %d chips / %d hosts / %zu links, "
      "%d worker%s, epoch %llu, cycle %llu/%llu\n",
      fabric.num_chips(), fabric.num_hosts(), fabric.num_links(),
      fabric.workers(), fabric.workers() == 1 ? "" : "s",
      static_cast<unsigned long long>(fabric.epoch_cycles()),
      static_cast<unsigned long long>(now),
      static_cast<unsigned long long>(args.cycles));
  std::printf(
      "cluster: %8.2f Gbps %7.3f Mpps  delivered %llu  errors %llu  "
      "latency p50/p95/p99 %.0f/%.0f/%.0f\n\n",
      reg.gauge_value("cluster/gbps"), reg.gauge_value("cluster/mpps"),
      c("cluster/delivered_packets"), c("cluster/errors"),
      reg.gauge_value("cluster/latency/p50"),
      reg.gauge_value("cluster/latency/p95"),
      reg.gauge_value("cluster/latency/p99"));

  std::printf("%-5s %9s %10s %8s %9s %9s\n", "chip", "offered", "delivered",
              "Gbps", "wall ms", "lag ms");
  for (int i = 0; i < fabric.num_chips(); ++i) {
    const std::string base = "cluster/chip" + std::to_string(i);
    std::printf("%-5d %9llu %10llu %8.2f %9.2f %9.2f\n", i,
                c(base + "/offered_packets"), c(base + "/delivered_packets"),
                reg.gauge_value(base + "/gbps"),
                static_cast<double>(c(base + "/wall_ns")) / 1e6,
                static_cast<double>(c(base + "/epoch_lag_ns")) / 1e6);
  }
  std::printf("(lag = wall time behind the slowest chip; big lags mean "
              "thread-per-chip workers idle at the epoch barrier)\n");

  const bool recovery_armed = fabric.config().reliable_links ||
                              fabric.config().failover ||
                              !fabric.config().faults.empty();
  if (recovery_armed) {
    std::printf("\n%-6s %-12s %10s %12s %10s %9s %8s %5s\n", "link", "route",
                "sent", "delivered", "in-flight", "rexmit", "wroff", "dead");
    for (std::size_t l = 0; l < fabric.num_links(); ++l) {
      const auto& plan = fabric.topology().links[l];
      const std::string base = "cluster/link" + std::to_string(l);
      char route[16];
      std::snprintf(route, sizeof route, "%d.%d -> %d.%d", plan.src_chip,
                    plan.src_port, plan.dst_chip, plan.dst_port);
      std::printf("%-6zu %-12s %10llu %12llu %10llu %9llu %8llu %5s\n", l,
                  route, c(base + "/sent_words"), c(base + "/delivered_words"),
                  c(base + "/in_flight"), c(base + "/retransmits"),
                  c(base + "/written_off"),
                  c(base + "/dead") != 0 ? "DEAD" : "-");
    }
  } else {
    std::printf("\n%-6s %-12s %10s %12s %10s %9s\n", "link", "route",
                "sent", "delivered", "in-flight", "occ");
    for (std::size_t l = 0; l < fabric.num_links(); ++l) {
      const auto& plan = fabric.topology().links[l];
      const std::string base = "cluster/link" + std::to_string(l);
      char route[16];
      std::snprintf(route, sizeof route, "%d.%d -> %d.%d", plan.src_chip,
                    plan.src_port, plan.dst_chip, plan.dst_port);
      std::printf("%-6zu %-12s %10llu %12llu %10llu %9llu\n", l, route,
                  c(base + "/sent_words"), c(base + "/delivered_words"),
                  c(base + "/in_flight"), c(base + "/occupancy"));
    }
  }
  std::printf("trunk egress elastic buffers: %llu words queued "
              "(peak %llu)\n",
              c("cluster/trunk_queued_words"),
              c("cluster/trunk_peak_queued_words"));

  // Recovery panel: what the self-healing machinery has done so far — CRC
  // repairs on the trunks, faults fired, and the fail-over ledger when a
  // confirmed failure degraded the fabric.
  if (recovery_armed) {
    std::printf("\nrecovery: %s  retransmits %llu  delivered-corrupt %llu  "
                "faults fired %llu\n",
                fabric.status() == raw::cluster::ClusterStatus::kDegraded
                    ? "DEGRADED"
                    : "healthy",
                c("cluster/recovered/retransmits"),
                c("cluster/recovered/delivered_corrupt"),
                c("cluster/faults/fired"));
    if (fabric.failover_generation() > 0) {
      std::printf("  reroute gen %llu: %llu dead links, %llu dead chips, "
                  "%llu unreachable hosts, %llu words written off, "
                  "%llu packets abandoned\n",
                  c("cluster/failover/generation"),
                  c("cluster/failover/dead_links"),
                  c("cluster/failover/dead_chips"),
                  c("cluster/failover/unreachable_hosts"),
                  c("cluster/failover/written_off_words"),
                  c("cluster/failover/abandoned_packets"));
    }
  }

  const std::uint64_t lost = reg.counter_value("cluster/conservation/lost");
  const std::uint64_t errors = reg.counter_value("cluster/errors");
  if (lost > 0 || errors > 0) {
    std::printf("\nVALIDATION: %llu errors, %llu lost\n",
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(lost));
  }
  std::fflush(stdout);
}

int run_cluster(const Args& args) {
  raw::cluster::ClusterConfig cfg;
  cfg.topology = raw::cluster::TopologyKind::kLeafSpine;
  cfg.num_chips = args.cluster_chips;
  cfg.threads = args.threads;
  cfg.traffic.size = raw::net::SizeDist::kFixed;
  cfg.traffic.fixed_bytes = args.bytes;
  cfg.traffic.load = args.load;
  cfg.traffic.remote_fraction = args.cluster_remote;
  cfg.reliable_links = args.links;
  cfg.failover = args.recovery;
  if (args.chaos != nullptr) {
    // Cluster chaos mixes name inter-chip fault kinds; the schedule is the
    // same seeded one the chaos harness would build for this geometry.
    raw::cluster::ClusterChaosSpec spec;
    if (!raw::cluster::parse_cluster_mix(args.chaos, &spec.mix)) {
      std::fprintf(stderr,
                   "unknown cluster fault mix '%s' (corrupt|stall|cut|freeze)\n",
                   args.chaos);
      return 2;
    }
    spec.seed = args.chaos_seed;
    spec.num_chips = args.cluster_chips;
    spec.run_cycles = args.cycles;
    cfg.faults = raw::cluster::make_cluster_fault_events(spec);
  }
  raw::cluster::ClusterFabric fabric(cfg, args.seed);

  MetricRegistry registry;
  const bool quiet = args.json || args.csv;
  const bool redraw = !quiet && !args.no_refresh && isatty(STDOUT_FILENO) != 0;
  Cycle now = 0;
  while (now < args.cycles) {
    const Cycle chunk = std::min(args.interval, args.cycles - now);
    fabric.run(chunk);
    now = fabric.cycle();
    fabric.export_metrics(registry);
    if (!quiet) print_cluster_dashboard(args, registry, fabric, now, redraw);
  }
  if (args.json) std::printf("%s", registry.to_json().c_str());
  if (args.csv) std::printf("%s", registry.to_csv().c_str());
  return fabric.errors() != 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.cluster_chips > 0) return run_cluster(args);

  raw::router::RouterConfig cfg;
  cfg.runtime.quantum_max_words = args.quantum;
  cfg.channel_stats = args.channel_stats;
  cfg.threads = args.threads;
  cfg.max_lookahead = args.lookahead;
  cfg.link.enabled = args.links;
  cfg.recovery.enabled = args.recovery;

  raw::net::TrafficConfig traffic;
  traffic.num_ports = raw::router::kNumPorts;
  traffic.pattern = args.pattern;
  traffic.size = raw::net::SizeDist::kFixed;
  traffic.fixed_bytes = args.bytes;
  traffic.load = args.load;

  raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), traffic,
                                args.seed);

  raw::common::PacketTracer tracer;
  if (args.trace_path != nullptr) {
    router.set_tracer(&tracer);
    tracer.enable(args.trace_budget);
  }

  // One flight snapshot per dashboard interval, so the merged Chrome trace's
  // engine counter track lines up with the refresh cadence.
  raw::common::Profiler profiler(std::max(1, router.threads()));
  if (args.profile) {
    profiler.enable_flight(/*capacity=*/512, /*interval=*/args.interval);
    router.set_profiler(&profiler);
  }

  raw::sim::FaultPlan fault_plan;
  if (args.chaos != nullptr) {
    raw::router::ChaosMix mix;
    if (!raw::router::parse_mix(args.chaos, &mix)) {
      std::fprintf(stderr, "unknown fault mix '%s'\n", args.chaos);
      return 2;
    }
    raw::router::ChaosSpec spec;
    spec.seed = args.chaos_seed;
    spec.mix = mix;
    spec.run_cycles = args.cycles;
    fault_plan = raw::router::make_fault_plan(spec, router);
    router.set_fault_plan(&fault_plan);
  }

  MetricRegistry registry;
  const bool quiet = args.json || args.csv;
  const bool redraw = !quiet && !args.no_refresh && isatty(STDOUT_FILENO) != 0;

  Cycle now = 0;
  bool stalled = false;
  while (now < args.cycles && !stalled) {
    const Cycle chunk = std::min(args.interval, args.cycles - now);
    router.chip().trace().configure(now, now + chunk, 16);
    if (args.profile) profiler.start();
    stalled = router.run(chunk) == raw::router::RunStatus::kStalled;
    if (args.profile) profiler.stop();
    now = router.chip().cycle();
    router.export_metrics(registry);
    export_tile_utilization(router.chip().trace(), registry);
    if (args.profile) profiler.export_metrics(registry);
    if (!quiet) {
      print_dashboard(args, registry, now, redraw);
      if (args.chaos != nullptr) print_fault_panel(registry);
      if (args.links || args.recovery || router.degraded()) {
        print_recovery_panel(registry, router);
      }
      if (args.profile) print_profile_panel(profiler);
    }
  }
  if (!quiet && router.stall_report().has_value()) {
    std::printf("\n%s\n", router.stall_report()->to_string().c_str());
  }

  if (args.json) std::printf("%s", registry.to_json().c_str());
  if (args.csv) std::printf("%s", registry.to_csv().c_str());

  if (args.trace_path != nullptr) {
    FILE* f = std::fopen(args.trace_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.trace_path);
      return 1;
    }
    const std::string json =
        args.profile
            ? raw::common::merged_chrome_json(&tracer, &profiler)
            : tracer.chrome_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (!quiet) {
      std::printf("\nwrote %zu trace events (%llu recorded, %llu overwritten) "
                  "to %s%s\n",
                  tracer.size(),
                  static_cast<unsigned long long>(tracer.recorded()),
                  static_cast<unsigned long long>(tracer.overwritten()),
                  args.trace_path,
                  args.profile ? " (engine-profile tracks merged)" : "");
    }
  }

  // Validation errors are the interesting output of a chaos run, not a tool
  // failure; without fault injection they mean the router misbehaved.
  return (args.chaos == nullptr && router.errors() != 0) ? 1 : 0;
}
