#include "net/small_table.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/route_table.h"

namespace raw::net {
namespace {

TEST(SmallTableTest, EmptyTrieMissesEverywhere) {
  PatriciaTrie trie;
  const SmallTable t = SmallTable::build(trie);
  EXPECT_FALSE(t.lookup(make_addr(1, 2, 3, 4)).has_value());
  EXPECT_EQ(t.level2_chunks(), 0u);
  EXPECT_EQ(t.level3_chunks(), 0u);
}

TEST(SmallTableTest, DefaultRouteLeafPushesToLevel1) {
  PatriciaTrie trie;
  trie.insert(0, 0, 7);
  const SmallTable t = SmallTable::build(trie);
  const auto r = t.lookup(make_addr(200, 1, 2, 3));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7u);
  EXPECT_EQ(r->accesses, 1);  // a /0 never needs deeper levels
  EXPECT_EQ(t.level2_chunks(), 0u);
}

TEST(SmallTableTest, ShortPrefixSingleAccess) {
  PatriciaTrie trie;
  trie.insert(make_addr(10, 0, 0, 0), 8, 3);
  const SmallTable t = SmallTable::build(trie);
  const auto hit = t.lookup(make_addr(10, 200, 1, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 3u);
  EXPECT_EQ(hit->accesses, 1);
  EXPECT_FALSE(t.lookup(make_addr(11, 0, 0, 1)).has_value());
}

TEST(SmallTableTest, MidPrefixNeedsTwoAccesses) {
  PatriciaTrie trie;
  trie.insert(make_addr(10, 1, 0, 0), 16, 1);
  trie.insert(make_addr(10, 1, 128, 0), 20, 2);  // forces level 2 under 10.1
  const SmallTable t = SmallTable::build(trie);
  const auto shallow = t.lookup(make_addr(10, 1, 5, 5));
  ASSERT_TRUE(shallow.has_value());
  EXPECT_EQ(shallow->value, 1u);
  EXPECT_EQ(shallow->accesses, 2);
  const auto deep = t.lookup(make_addr(10, 1, 130, 9));
  ASSERT_TRUE(deep.has_value());
  EXPECT_EQ(deep->value, 2u);
}

TEST(SmallTableTest, HostRouteNeedsThreeAccesses) {
  PatriciaTrie trie;
  trie.insert(make_addr(10, 1, 2, 0), 24, 1);
  trie.insert(make_addr(10, 1, 2, 99), 32, 9);
  const SmallTable t = SmallTable::build(trie);
  const auto host = t.lookup(make_addr(10, 1, 2, 99));
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->value, 9u);
  EXPECT_EQ(host->accesses, 3);
  const auto neighbour = t.lookup(make_addr(10, 1, 2, 98));
  ASSERT_TRUE(neighbour.has_value());
  EXPECT_EQ(neighbour->value, 1u);
}

TEST(SmallTableTest, AccessesNeverExceedThree) {
  const RouteTable table = RouteTable::random(2000, 4, 3);
  const SmallTable t = SmallTable::build(table.trie());
  common::Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const auto r = t.lookup(static_cast<Addr>(rng.next()));
    ASSERT_TRUE(r.has_value());  // random table includes a default route
    EXPECT_GE(r->accesses, 1);
    EXPECT_LE(r->accesses, 3);
  }
}

TEST(SmallTableTest, ChunkDeduplicationKeepsTablesSmall) {
  // 256 /24 routes that all share the same interior pattern: chunks dedupe.
  PatriciaTrie trie;
  for (std::uint32_t i = 0; i < 64; ++i) {
    trie.insert(make_addr(10, static_cast<std::uint8_t>(i), 1, 0), 24, 5);
  }
  const SmallTable t = SmallTable::build(trie);
  // All 64 /16 ranges have the identical level-2 chunk.
  EXPECT_EQ(t.level2_chunks(), 1u);
  EXPECT_LT(t.total_bytes(), (1u << 16) * 4 + 2 * 256 * 4 + 1024);
}

// Property test: SmallTable agrees with the trie's LPM everywhere that
// matters (random tables, random probes, and probes near prefix edges).
TEST(SmallTablePropertyTest, MatchesPatriciaExactly) {
  common::Rng rng(123);
  for (int trial = 0; trial < 6; ++trial) {
    PatriciaTrie trie;
    std::vector<Addr> interesting;
    const int n = 1 + static_cast<int>(rng.below(80));
    for (int i = 0; i < n; ++i) {
      const int len = static_cast<int>(rng.below(33));
      const Addr mask = len == 0 ? 0 : ~Addr{0} << (32 - len);
      const Addr prefix = static_cast<Addr>(rng.next()) & mask;
      trie.insert(prefix, len, static_cast<std::uint32_t>(rng.below(16)));
      interesting.push_back(prefix);
      interesting.push_back(prefix | ~mask);      // last address of range
      interesting.push_back((prefix | ~mask) + 1);  // first address after
      interesting.push_back(prefix - 1);
    }
    const SmallTable t = SmallTable::build(trie);
    const auto check = [&](Addr addr) {
      const auto expect = trie.lookup(addr);
      const auto got = t.lookup(addr);
      ASSERT_EQ(expect.has_value(), got.has_value()) << addr_to_string(addr);
      if (expect.has_value()) {
        EXPECT_EQ(got->value, expect->value) << addr_to_string(addr);
      }
    };
    for (const Addr a : interesting) check(a);
    for (int probe = 0; probe < 500; ++probe) {
      check(static_cast<Addr>(rng.next()));
    }
  }
}

}  // namespace
}  // namespace raw::net
