// Endurance soak CLI (router/soak.h): billions of cycles as a deterministic
// sequence of epochs, each a fresh router under a rotating chaos mix and
// traffic profile with the invariant monitor armed, checkpoint ring
// capturing replay anchors, and the RSS flatness sentinel watching for
// leaks.
//
//   ./rawsoak                                  # 1e9 cycles, links+recovery
//   ./rawsoak --cycles 4000000000 --seed 7
//   ./rawsoak --time-box 540 --report soak.json      # CI nightly shape
//   ./rawsoak --inject-failure-at 6000000 --bundle-dir .   # self-test:
//       violation -> bundle -> anchored replay must agree
//
// Cluster mode soaks the *multi-chip* fabric instead: each epoch is a fresh
// cluster under the next of the 8 standard inter-chip mixes (rotating), with
// reliable links + fail-over armed and every recovery invariant checked. A
// failing epoch writes a replayable repro bundle to --bundle-dir.
//
//   ./rawsoak --cluster --epochs 16 --chips 8 --threads 4
//   ./rawsoak --cluster --time-box 540 --bundle-dir bundles
//
// Exit status 0 only when the soak passes (for the self-test shape above:
// when the injected failure produced a bundle whose anchored replay and
// from-zero replay both reproduce the recorded digest trajectory).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/chaos.h"
#include "router/soak.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rawsoak [--cycles N] [--epoch N] [--drain N] [--seed S]\n"
      "               [--threads T] [--no-links] [--no-recovery]\n"
      "               [--force-dense] [--cadence N] [--checkpoint-interval N]\n"
      "               [--ring K] [--grace N] [--time-box SECONDS]\n"
      "               [--inject-failure-at CYCLE] [--no-verify-replay]\n"
      "               [--report FILE] [--bundle-dir DIR] [--flight-dir DIR]\n"
      "               [--checkpoint-dir DIR]\n"
      "       rawsoak --cluster [--epochs N] [--chips N] [--seed S]\n"
      "               [--threads T] [--epoch CYCLES] [--time-box SECONDS]\n"
      "               [--bundle-dir DIR]\n");
}

bool write_file(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

/// Cluster soak: rotate the standard inter-chip mixes across epochs, each
/// epoch a fresh fabric with recovery armed. Stops early on a failed epoch
/// (after writing its bundle) or when the time box expires.
int run_cluster_soak(int epochs, int chips, std::uint64_t seed, int threads,
                     raw::common::Cycle epoch_cycles, double time_box_seconds,
                     const char* bundle_dir) {
  const std::vector<raw::cluster::ClusterChaosMix> mixes =
      raw::cluster::standard_cluster_mixes();
  std::printf("rawsoak --cluster: %d epochs, %d chips, seed %llu, "
              "%llu cycles/epoch%s\n",
              epochs, chips, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(epoch_cycles),
              time_box_seconds > 0 ? " (time-boxed)" : "");
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t delivered = 0;
  std::uint64_t faults = 0;
  std::uint64_t retransmits = 0;
  int degraded_epochs = 0;
  int run = 0;
  bool pass = true;
  for (int e = 0; e < epochs; ++e) {
    raw::cluster::ClusterChaosSpec spec;
    spec.seed = seed + static_cast<std::uint64_t>(e);
    spec.mix = mixes[static_cast<std::size_t>(e) % mixes.size()];
    spec.num_chips = chips;
    spec.run_cycles = epoch_cycles;
    spec.threads = threads;
    spec.reliable_links = true;
    spec.failover = true;
    const std::vector<raw::cluster::ClusterFaultEvent> events =
        raw::cluster::make_cluster_fault_events(spec);
    const raw::cluster::ClusterChaosResult r =
        raw::cluster::run_cluster_chaos_events(spec, events);
    ++run;
    delivered += r.delivered;
    faults += r.faults_injected;
    retransmits += r.retransmits;
    if (r.degraded) ++degraded_epochs;
    std::printf("  epoch %-4d %-28s %-5s %-10s dlv %-8llu faults %-3llu "
                "rexmit %llu\n",
                e, r.mix.empty() ? "clean" : r.mix.c_str(),
                r.pass ? "PASS" : "FAIL",
                r.degraded ? "DEGRADED" : "healthy",
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.faults_injected),
                static_cast<unsigned long long>(r.retransmits));
    if (!r.pass) {
      std::printf("    -> %s\n", r.failure.c_str());
      pass = false;
      if (bundle_dir != nullptr) {
        raw::cluster::ClusterChaosRepro repro;
        repro.spec = spec;
        repro.events = events;
        repro.pass = r.pass;
        repro.failure = r.failure;
        repro.degraded = r.degraded;
        repro.drained = r.drained;
        repro.digest = r.digest;
        const std::string path = std::string(bundle_dir) + "/cluster_epoch" +
                                 std::to_string(e) + ".repro.json";
        if (write_file(path.c_str(), raw::cluster::to_json(repro))) {
          std::printf("    bundle: %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "cannot write %s\n", path.c_str());
        }
      }
      break;
    }
    if (time_box_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= time_box_seconds) {
        std::printf("  time box expired after epoch %d\n", e);
        break;
      }
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("cluster soak: %s — %d epochs (%.1fs wall), %llu delivered, "
              "%llu faults, %llu retransmits, %d degraded epochs\n",
              pass ? "PASS" : "FAIL", run, wall,
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(faults),
              static_cast<unsigned long long>(retransmits), degraded_epochs);
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  raw::router::SoakSpec spec;
  const char* report_path = nullptr;
  bool cluster = false;
  int cluster_epochs = 8;
  int cluster_chips = 4;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return !std::strcmp(argv[i], name) && i + 1 < argc;
    };
    if (arg("--cycles")) {
      spec.total_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--epoch")) {
      spec.epoch_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--drain")) {
      spec.drain_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--seed")) {
      spec.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--threads")) {
      spec.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--no-links")) {
      spec.reliable_links = false;
    } else if (!std::strcmp(argv[i], "--no-recovery")) {
      spec.recovery = false;
    } else if (!std::strcmp(argv[i], "--force-dense")) {
      spec.force_dense = true;
    } else if (arg("--cadence")) {
      spec.invariant_cadence = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--checkpoint-interval")) {
      spec.checkpoint_interval = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--ring")) {
      spec.checkpoint_ring = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--grace")) {
      spec.checkpoint_grace = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--time-box")) {
      spec.time_box_seconds = std::atof(argv[++i]);
    } else if (arg("--inject-failure-at")) {
      spec.inject_invariant_failure_at = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--no-verify-replay")) {
      spec.verify_failure_replay = false;
    } else if (arg("--report")) {
      report_path = argv[++i];
    } else if (arg("--bundle-dir")) {
      spec.bundle_dir = argv[++i];
    } else if (arg("--flight-dir")) {
      spec.flight_dir = argv[++i];
    } else if (arg("--checkpoint-dir")) {
      spec.checkpoint_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--cluster")) {
      cluster = true;
    } else if (arg("--epochs")) {
      cluster_epochs = std::atoi(argv[++i]);
    } else if (arg("--chips")) {
      cluster_chips = std::atoi(argv[++i]);
    } else {
      usage();
      return 2;
    }
  }

  if (cluster) {
    // The router soak's epoch default (millions of cycles) is too long for
    // a per-epoch fresh cluster; use a cluster-sized default unless --epoch
    // was given explicitly.
    const raw::common::Cycle cluster_epoch_cycles =
        spec.epoch_cycles == raw::router::SoakSpec{}.epoch_cycles
            ? 20000
            : spec.epoch_cycles;
    return run_cluster_soak(cluster_epochs, cluster_chips, spec.seed,
                            spec.threads, cluster_epoch_cycles,
                            spec.time_box_seconds,
                            spec.bundle_dir.empty() ? nullptr
                                                    : spec.bundle_dir.c_str());
  }

  std::printf("rawsoak: %llu cycles in %llu-cycle epochs, seed %llu, "
              "links %s, recovery %s%s\n",
              static_cast<unsigned long long>(spec.total_cycles),
              static_cast<unsigned long long>(spec.epoch_cycles),
              static_cast<unsigned long long>(spec.seed),
              spec.reliable_links ? "on" : "off",
              spec.recovery ? "on" : "off",
              spec.time_box_seconds > 0 ? " (time-boxed)" : "");

  const raw::router::SoakReport rep = raw::router::run_soak(spec);

  for (const raw::router::SoakEpochResult& e : rep.epochs) {
    std::printf("  epoch %-4lld %-28s %-12s %-5s %-18s dlv %-8llu "
                "sweeps %-5llu ckpts %llu\n",
                static_cast<long long>(e.epoch), e.mix.c_str(),
                e.traffic_profile.c_str(), e.chaos.pass ? "PASS" : "FAIL",
                raw::router::drain_outcome_name(e.chaos.outcome),
                static_cast<unsigned long long>(e.chaos.delivered),
                static_cast<unsigned long long>(e.chaos.invariant_sweeps),
                static_cast<unsigned long long>(e.chaos.checkpoints_captured));
  }

  std::printf("soak: %s — %lld epochs, %llu cycles (%.1fs wall%s), "
              "%llu delivered, %llu faults, %llu sweeps, %llu checkpoints, "
              "rss %llu -> %llu (peak %llu, %s)\n",
              rep.pass ? "PASS" : "FAIL",
              static_cast<long long>(rep.epochs_run),
              static_cast<unsigned long long>(rep.cycles_run),
              rep.wall_seconds, rep.time_boxed ? ", time-boxed" : "",
              static_cast<unsigned long long>(rep.delivered),
              static_cast<unsigned long long>(rep.faults_injected),
              static_cast<unsigned long long>(rep.invariant_sweeps),
              static_cast<unsigned long long>(rep.checkpoints_captured),
              static_cast<unsigned long long>(rep.rss_first),
              static_cast<unsigned long long>(rep.rss_last),
              static_cast<unsigned long long>(rep.rss_peak),
              rep.mem_flat ? "flat" : "NOT FLAT");
  if (!rep.failure.empty()) std::printf("  -> %s\n", rep.failure.c_str());
  if (!rep.bundle_path.empty()) {
    std::printf("  bundle: %s\n", rep.bundle_path.c_str());
  }
  if (!rep.flight_path.empty()) {
    std::printf("  flight: %s\n", rep.flight_path.c_str());
  }
  if (rep.replay.attempted) {
    std::printf("  anchored replay: %s (anchor @%llu, digest %016llx, "
                "from-zero %016llx)%s%s\n",
                rep.replay.ok ? "MATCH" : "MISMATCH",
                static_cast<unsigned long long>(rep.replay.anchor_cycle),
                static_cast<unsigned long long>(rep.replay.anchored_digest),
                static_cast<unsigned long long>(rep.replay.from_zero_digest),
                rep.replay.ok ? "" : " — ",
                rep.replay.ok ? "" : rep.replay.detail.c_str());
  }

  if (report_path != nullptr && !write_file(report_path, rep.to_json())) {
    std::fprintf(stderr, "cannot write %s\n", report_path);
    return 2;
  }

  // Self-test shape: an injected failure is *supposed* to fail the soak —
  // success means the bundle's anchored replay reproduced it exactly.
  if (spec.inject_invariant_failure_at > 0) {
    const bool injected_ok =
        !rep.pass && rep.replay.attempted && rep.replay.ok;
    std::printf("injected-failure self-test: %s\n",
                injected_ok ? "PASS" : "FAIL");
    return injected_ok ? 0 : 1;
  }
  return rep.pass ? 0 : 1;
}
