// Linear-bucket histogram for latency and queue-depth distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace raw::common {

class Histogram {
 public:
  /// Buckets of `bucket_width` covering [0, bucket_width * num_buckets);
  /// larger samples land in a single overflow bucket.
  Histogram(double bucket_width, std::size_t num_buckets);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t num_buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// Value below which `q` (in [0,1]) of the samples fall, linearly
  /// interpolated within the containing bucket.
  [[nodiscard]] double quantile(double q) const;

  /// Folds `other` into this histogram bucket-by-bucket, so per-card
  /// distributions can be aggregated into a cluster-wide one. Both
  /// histograms must share the same binning (asserted).
  void merge(const Histogram& other);

  /// Compact multi-line ASCII rendering (for bench report output).
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace raw::common
