// One direction of an inter-chip trunk: a seeded, deterministic word FIFO
// with configurable latency and token-bucket bandwidth throttling.
//
// The link is the only state two chips share, and it is built for the
// epoch-synchronised schedule (FireSim-style "big tokens"): during an epoch
// the sending chip's trunk card appends to a staging buffer and the
// receiving chip's trunk card pops only words committed at the previous
// epoch barrier, so the two sides touch disjoint state and an epoch can run
// thread-per-chip without locks. commit_epoch() — called single-threaded at
// the barrier — moves staging into the delivery queue and refreshes the
// sender's occupancy view. Because the epoch length never exceeds the link
// latency, a word sent mid-epoch could not have arrived before the next
// barrier anyway: the relaxed synchronisation is timing-exact, and the
// serial and threaded schedules are digest-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "router/line_cards.h"

namespace raw::cluster {

class InterChipLink final : public router::WordTx, public router::WordRx {
 public:
  struct Params {
    common::Cycle latency = 16;
    std::uint64_t throttle_numer = 1;
    std::uint64_t throttle_denom = 1;
    std::size_t capacity_words = 256;
    /// Uniform extra latency in [0, jitter] per word, monotonically clamped
    /// so the FIFO never reorders. 0 = none (and the RNG is never drawn).
    common::Cycle jitter = 0;
    std::uint64_t seed = 1;
  };

  explicit InterChipLink(const Params& params);

  // WordTx — sender side (the source chip's trunk egress card).
  [[nodiscard]] bool can_send(common::Cycle now) override;
  void send(common::Word w, common::Cycle now) override;

  // WordRx — receiver side (the destination chip's trunk ingress card).
  [[nodiscard]] bool has_word(common::Cycle now) override;
  [[nodiscard]] common::Word recv(common::Cycle now) override;

  /// Epoch barrier (single-threaded): commits staged words into the
  /// delivery queue and refreshes the sender's occupancy view.
  void commit_epoch();

  /// Conservation counters: words accepted by send() and words handed out
  /// by recv(). At any epoch barrier,
  ///   sent_total == delivered_total + in_flight_words().
  [[nodiscard]] std::uint64_t sent_total() const { return sent_total_; }
  [[nodiscard]] std::uint64_t delivered_total() const {
    return delivered_total_;
  }
  /// Words inside the link (queue + staging). Barrier-phase only.
  [[nodiscard]] std::size_t in_flight_words() const {
    return queue_.size() + staging_.size();
  }
  /// Committed-queue occupancy. Barrier-phase only.
  [[nodiscard]] std::size_t occupancy() const { return queue_.size(); }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  /// Credits tokens for the cycles since the last refill (integer
  /// accumulator, burst cap = numer).
  void refill(common::Cycle now);

  struct Slot {
    common::Cycle deliver = 0;
    common::Word word = 0;
  };

  Params params_;
  common::Rng rng_;

  // Sender-side state (touched only by the source chip during an epoch).
  std::uint64_t tokens_ = 0;
  std::uint64_t accum_ = 0;
  common::Cycle last_refill_ = 0;
  common::Cycle last_deliver_ = 0;
  std::vector<Slot> staging_;
  std::size_t sent_this_epoch_ = 0;
  std::size_t occupancy_base_ = 0;  // queue size at the last barrier
  std::uint64_t sent_total_ = 0;

  // Receiver-side state (touched only by the destination chip).
  std::deque<Slot> queue_;
  std::uint64_t delivered_total_ = 0;
};

}  // namespace raw::cluster
