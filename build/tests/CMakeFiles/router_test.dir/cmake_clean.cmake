file(REMOVE_RECURSE
  "CMakeFiles/router_test.dir/router/analytic_test.cc.o"
  "CMakeFiles/router_test.dir/router/analytic_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/config_space_test.cc.o"
  "CMakeFiles/router_test.dir/router/config_space_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/header_test.cc.o"
  "CMakeFiles/router_test.dir/router/header_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/layout_test.cc.o"
  "CMakeFiles/router_test.dir/router/layout_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/line_cards_test.cc.o"
  "CMakeFiles/router_test.dir/router/line_cards_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/raw_router_test.cc.o"
  "CMakeFiles/router_test.dir/router/raw_router_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/router_param_test.cc.o"
  "CMakeFiles/router_test.dir/router/router_param_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/rule_param_test.cc.o"
  "CMakeFiles/router_test.dir/router/rule_param_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/rule_test.cc.o"
  "CMakeFiles/router_test.dir/router/rule_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/schedule_compiler_test.cc.o"
  "CMakeFiles/router_test.dir/router/schedule_compiler_test.cc.o.d"
  "router_test"
  "router_test.pdb"
  "router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
