file(REMOVE_RECURSE
  "CMakeFiles/bg_hol_vs_voq.dir/bg_hol_vs_voq.cc.o"
  "CMakeFiles/bg_hol_vs_voq.dir/bg_hol_vs_voq.cc.o.d"
  "bg_hol_vs_voq"
  "bg_hol_vs_voq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bg_hol_vs_voq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
