// One direction of an inter-chip trunk: a seeded, deterministic word FIFO
// with configurable latency, token-bucket bandwidth throttling, and an
// optional CRC+sequence reliable layer.
//
// The link is the only state two chips share, and it is built for the
// epoch-synchronised schedule (FireSim-style "big tokens"): during an epoch
// the sending chip's trunk card appends to a staging buffer and the
// receiving chip's trunk card pops only words committed at the previous
// epoch barrier, so the two sides touch disjoint state and an epoch can run
// thread-per-chip without locks. commit_epoch() — called single-threaded at
// the barrier — moves staging into the delivery queue and refreshes the
// sender's occupancy view. Because the epoch length never exceeds the link
// latency, a word sent mid-epoch could not have arrived before the next
// barrier anyway: the relaxed synchronisation is timing-exact, and the
// serial and threaded schedules are digest-identical.
//
// Reliable mode mirrors the single-chip sim::LinkGuard protocol at trunk
// scale: every word carries a sequence number and a CRC-8 tag over
// (word, seq), and the sender keeps the clean copy (its replay buffer)
// alongside the wire word. When the receiver's front-of-FIFO check catches
// a tag mismatch it NACKs: the word is repaired from the replay copy and
// its delivery slips by retransmit_rtt — one retransmit round trip — up to
// retransmit_limit times per word, after which the corrupt word is
// delivered and counted. The repair happens entirely on the receiver's
// side of the epoch split, so reliability composes with thread-per-chip
// execution unchanged.
//
// Fault hooks (corrupt_front / stall_until / cut / write_off_in_flight) are
// barrier-phase only: cluster::ClusterFaultPlan and the fail-over
// controller call them between epochs, which keeps every schedule
// digest-identical at any worker count. The word conservation identity is
//   sent_total == delivered_total + in_flight_words + written_off_total
// at every barrier (written_off_total stays 0 until a fail-over writes a
// dead link's in-flight words off).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "router/line_cards.h"

namespace raw::cluster {

class InterChipLink final : public router::WordTx, public router::WordRx {
 public:
  struct Params {
    common::Cycle latency = 16;
    std::uint64_t throttle_numer = 1;
    std::uint64_t throttle_denom = 1;
    std::size_t capacity_words = 256;
    /// Uniform extra latency in [0, jitter] per word, monotonically clamped
    /// so the FIFO never reorders. 0 = none. The draw is a pure function of
    /// (seed, word sequence number) — never of arrival order — so jitter
    /// composes with retransmit replay without perturbing later words.
    common::Cycle jitter = 0;
    std::uint64_t seed = 1;
    /// CRC+seq reliable layer: corrupted words are repaired by bounded
    /// retransmit instead of delivered as damage.
    bool reliable = false;
    /// Retransmits per word before the link gives up and delivers the
    /// corrupt word (counted in delivered_corrupt). Must be >= 1 when
    /// reliable.
    std::uint32_t retransmit_limit = 3;
    /// Delivery slip per NACK round trip, in cycles.
    common::Cycle retransmit_rtt = 4;
  };

  explicit InterChipLink(const Params& params);

  // WordTx — sender side (the source chip's trunk egress card).
  [[nodiscard]] bool can_send(common::Cycle now) override;
  void send(common::Word w, common::Cycle now) override;

  // WordRx — receiver side (the destination chip's trunk ingress card).
  [[nodiscard]] bool has_word(common::Cycle now) override;
  [[nodiscard]] common::Word recv(common::Cycle now) override;

  /// Epoch barrier (single-threaded): commits staged words into the
  /// delivery queue and refreshes the sender's occupancy view.
  void commit_epoch();

  // Fault hooks — barrier phase only (see cluster/cluster_faults.h).

  /// Flips `bit` (mod 32) of the wire word nearest the reader. Returns
  /// false when the link has no committed word to corrupt.
  bool corrupt_front(std::uint32_t bit);
  /// Takes the link down until `until` (transient open: no sends, no
  /// deliveries). Extends but never shortens an open window.
  void stall_until(common::Cycle until);
  /// Permanently severs the link: can_send and has_word are false forever.
  void cut() { cut_ = true; }
  [[nodiscard]] bool is_cut() const { return cut_; }
  /// Writes off every in-flight word (queue + staging) — fail-over
  /// accounting for a confirmed-dead link. Returns the number written off.
  std::uint64_t write_off_in_flight();

  /// Conservation counters: at any epoch barrier,
  ///   sent_total == delivered_total + in_flight_words + written_off_total.
  [[nodiscard]] std::uint64_t sent_total() const { return sent_total_; }
  [[nodiscard]] std::uint64_t delivered_total() const {
    return delivered_total_;
  }
  [[nodiscard]] std::uint64_t written_off_total() const {
    return written_off_total_;
  }
  /// Words inside the link (queue + staging). Barrier-phase only.
  [[nodiscard]] std::size_t in_flight_words() const {
    return queue_.size() + staging_.size();
  }
  /// Committed-queue occupancy. Barrier-phase only.
  [[nodiscard]] std::size_t occupancy() const { return queue_.size(); }

  // Reliable-layer counters (zero when the layer is off).
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t delivered_corrupt() const {
    return delivered_corrupt_;
  }

  /// Sequence-book identity (barrier phase): words are numbered 0,1,2,... at
  /// send, popped in order, and written off from the front, so the oldest
  /// in-flight word's seq must equal delivered + written_off and the books
  /// must span exactly [delivered + written_off, sent).
  [[nodiscard]] bool seq_books_ok() const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  /// Credits tokens for the cycles since the last refill (integer
  /// accumulator, burst cap = numer).
  void refill(common::Cycle now);
  /// Reliable front check: true when the front word may be delivered as-is
  /// (clean, or past its retransmit budget); on a detected mismatch the
  /// word is repaired, delivery slips one round trip, and false is
  /// returned.
  bool front_intact(common::Cycle now);

  /// CRC-8 (poly 0x07) over the 32-bit word and sequence number — the same
  /// code the single-chip reliable links use (sim::Channel::link_crc8).
  [[nodiscard]] static std::uint8_t link_crc8(common::Word w,
                                              std::uint64_t seq);

  struct Slot {
    common::Cycle deliver = 0;
    common::Word word = 0;  // clean copy (the sender's replay buffer)
    common::Word wire = 0;  // what the trunk actually carries
    std::uint64_t seq = 0;
    std::uint8_t tag = 0;  // link_crc8(word, seq), computed at send
  };

  Params params_;

  // Sender-side state (touched only by the source chip during an epoch).
  std::uint64_t tokens_ = 0;
  std::uint64_t accum_ = 0;
  common::Cycle last_refill_ = 0;
  common::Cycle last_deliver_ = 0;
  std::vector<Slot> staging_;
  std::size_t sent_this_epoch_ = 0;
  std::size_t occupancy_base_ = 0;  // queue size at the last barrier
  std::uint64_t sent_total_ = 0;

  // Receiver-side state (touched only by the destination chip).
  std::deque<Slot> queue_;
  std::uint64_t delivered_total_ = 0;
  std::uint32_t front_retries_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t delivered_corrupt_ = 0;

  // Fault state (written at barriers only; read by both sides).
  common::Cycle stall_until_ = 0;
  bool cut_ = false;
  std::uint64_t written_off_total_ = 0;
};

}  // namespace raw::cluster
