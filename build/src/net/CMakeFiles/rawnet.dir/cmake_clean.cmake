file(REMOVE_RECURSE
  "CMakeFiles/rawnet.dir/cell.cc.o"
  "CMakeFiles/rawnet.dir/cell.cc.o.d"
  "CMakeFiles/rawnet.dir/ipv4.cc.o"
  "CMakeFiles/rawnet.dir/ipv4.cc.o.d"
  "CMakeFiles/rawnet.dir/packet.cc.o"
  "CMakeFiles/rawnet.dir/packet.cc.o.d"
  "CMakeFiles/rawnet.dir/patricia.cc.o"
  "CMakeFiles/rawnet.dir/patricia.cc.o.d"
  "CMakeFiles/rawnet.dir/route_table.cc.o"
  "CMakeFiles/rawnet.dir/route_table.cc.o.d"
  "CMakeFiles/rawnet.dir/small_table.cc.o"
  "CMakeFiles/rawnet.dir/small_table.cc.o.d"
  "CMakeFiles/rawnet.dir/traffic.cc.o"
  "CMakeFiles/rawnet.dir/traffic.cc.o.d"
  "librawnet.a"
  "librawnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
