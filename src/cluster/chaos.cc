#include "cluster/chaos.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "cluster/fabric.h"
#include "cluster/topology.h"
#include "common/assert.h"
#include "common/rng.h"
#include "sim/invariants.h"

namespace raw::cluster {

std::string ClusterChaosMix::name() const {
  if (!any()) return "clean";
  std::string s;
  const auto add = [&s](const char* kind) {
    if (!s.empty()) s += '+';
    s += kind;
  };
  if (corrupts) add("corrupt");
  if (stalls) add("stall");
  if (cuts) add("cut");
  if (freezes) add("freeze");
  return s;
}

ClusterConfig cluster_config_for(const ClusterChaosSpec& spec) {
  ClusterConfig cfg;
  cfg.num_chips = spec.num_chips;
  cfg.topology = spec.topology;
  cfg.threads = spec.threads;
  cfg.reliable_links = spec.reliable_links;
  cfg.failover = spec.failover;
  cfg.watchdog_interval = spec.watchdog_interval;
  cfg.traffic.load = spec.load;
  cfg.traffic.fixed_bytes = spec.bytes;
  cfg.traffic.remote_fraction = spec.remote_fraction;
  return cfg;
}

std::vector<ClusterFaultEvent> make_cluster_fault_events(
    const ClusterChaosSpec& spec) {
  // The schedule targets real geometry, so build the (fault-free) topology
  // the run will use.
  const Topology topo = Topology::build(cluster_config_for(spec));
  const std::size_t num_links = topo.links.size();
  RAW_ASSERT(num_links >= 2 && num_links % 2 == 0);  // trunks come in pairs

  common::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0x0c1f);
  std::vector<ClusterFaultEvent> events;
  // Faults land in the middle half of the run: late enough that traffic is
  // flowing, early enough that recovery has room to prove itself (and a
  // permanent fault leaves at least one watchdog interval before drain).
  const common::Cycle lo = spec.run_cycles / 4;
  const common::Cycle hi = std::max<common::Cycle>(lo + 1,
                                                   3 * spec.run_cycles / 4);
  const auto when = [&] { return lo + rng.below(hi - lo); };

  if (spec.mix.corrupts) {
    for (int i = 0; i < spec.faults_per_kind; ++i) {
      ClusterFaultEvent e;
      e.kind = ClusterFaultKind::kTrunkCorrupt;
      e.at = when();
      e.link = static_cast<int>(rng.below(num_links));
      e.bit = static_cast<std::uint32_t>(rng.below(32));
      events.push_back(e);
    }
  }
  if (spec.mix.stalls) {
    for (int i = 0; i < spec.faults_per_kind; ++i) {
      ClusterFaultEvent e;
      e.kind = ClusterFaultKind::kTrunkStall;
      e.at = when();
      e.link = static_cast<int>(rng.below(num_links));
      e.duration = 64 + rng.below(449);  // 64..512 cycles
      events.push_back(e);
    }
  }
  if (spec.mix.cuts) {
    // One trunk-pair cut per run: a fiber cut takes both directions of one
    // trunk (the builder wires them consecutively, so trunk t is links
    // {2t, 2t+1}). Capped at one so a schedule never shreds the fabric.
    const std::uint64_t trunk = rng.below(num_links / 2);
    const common::Cycle at = when();
    for (int dir = 0; dir < 2; ++dir) {
      ClusterFaultEvent e;
      e.kind = ClusterFaultKind::kTrunkCut;
      e.at = at;
      e.link = static_cast<int>(2 * trunk + static_cast<std::uint64_t>(dir));
      events.push_back(e);
    }
  }
  if (spec.mix.freezes) {
    // One chip death per run, drawn from the host-bearing chips and only
    // when another host-bearing chip survives it — a dead fabric that
    // delivers nothing would mask every other invariant.
    std::vector<char> has_host(static_cast<std::size_t>(topo.num_chips), 0);
    for (const HostPlan& h : topo.hosts) {
      has_host[static_cast<std::size_t>(h.chip)] = 1;
    }
    std::vector<int> candidates;
    for (int c = 0; c < topo.num_chips; ++c) {
      if (has_host[static_cast<std::size_t>(c)] != 0) candidates.push_back(c);
    }
    if (candidates.size() >= 2) {
      ClusterFaultEvent e;
      e.kind = ClusterFaultKind::kChipFreeze;
      e.at = when();
      e.chip = candidates[rng.below(candidates.size())];
      events.push_back(e);
    }
  }
  return events;
}

ClusterChaosResult run_cluster_chaos(const ClusterChaosSpec& spec) {
  return run_cluster_chaos_events(spec, make_cluster_fault_events(spec));
}

ClusterChaosResult run_cluster_chaos_events(
    const ClusterChaosSpec& spec,
    const std::vector<ClusterFaultEvent>& events) {
  // Expectations come from the events themselves, so a hand-edited or
  // replayed schedule is judged by the same rules as a generated one.
  bool corrupting = false;
  bool permanent = false;
  for (const ClusterFaultEvent& e : events) {
    corrupting |= e.kind == ClusterFaultKind::kTrunkCorrupt;
    permanent |= e.kind == ClusterFaultKind::kTrunkCut ||
                 e.kind == ClusterFaultKind::kChipFreeze;
  }

  ClusterConfig cfg = cluster_config_for(spec);
  cfg.faults = events;
  ClusterFabric fabric(cfg, spec.seed);

  sim::InvariantMonitor monitor;
  fabric.register_invariants(monitor);

  ClusterChaosResult r;
  r.seed = spec.seed;
  r.mix = spec.mix.name();

  // Run in watchdog-interval segments with an invariant sweep between each,
  // so a broken book is caught near where it broke.
  const common::Cycle segment =
      std::max<common::Cycle>(spec.watchdog_interval, fabric.epoch_cycles());
  common::Cycle remaining = spec.run_cycles;
  while (remaining > 0) {
    const common::Cycle step = std::min(segment, remaining);
    fabric.run(step);
    remaining -= step;
    monitor.sweep(fabric.cycle());
  }
  r.drained = fabric.drain(spec.drain_cycles);
  monitor.sweep(fabric.cycle());

  r.degraded = fabric.degraded();
  r.offered = fabric.offered_packets();
  r.delivered = fabric.delivered_packets();
  r.dropped_card = fabric.dropped_at_card();
  r.errors = fabric.errors();
  r.lost = fabric.lost_packets();
  r.faults_injected = fabric.fault_plan().fired();
  r.retransmits = fabric.total_retransmits();
  r.delivered_corrupt = fabric.total_delivered_corrupt();
  r.written_off_words = fabric.written_off_words();
  r.abandoned_packets = fabric.abandoned_packets();
  r.failover_generation = fabric.failover_generation();
  r.unreachable_hosts = fabric.unreachable_hosts().size();
  if (!monitor.ok()) {
    const sim::InvariantViolation& v = monitor.violations().front();
    r.invariant_failure = v.name + ": " + v.detail;
  }
  r.digest = fabric.cluster_digest();

  // ---- Invariant checks, most fundamental first. -------------------------
  const auto fail = [&r](std::string why) {
    if (r.failure.empty()) r.failure = std::move(why);
  };

  if (!r.invariant_failure.empty()) {
    fail("invariant monitor: " + r.invariant_failure);
  }
  // Conservation: ClusterFabric::drain already asserted the packet books;
  // re-derive them here so a failure is reported, not aborted.
  const std::uint64_t accounted = r.dropped_card +
                                  fabric.ledger().erased_total() +
                                  fabric.ledger().in_flight.size();
  if (r.offered != accounted) {
    fail("conservation: offered " + std::to_string(r.offered) +
         " != accounted " + std::to_string(accounted));
  }
  for (std::size_t l = 0; l < fabric.num_links(); ++l) {
    const InterChipLink& lk = fabric.link(l);
    if (lk.sent_total() !=
        lk.delivered_total() + lk.in_flight_words() + lk.written_off_total()) {
      fail("link books: link " + std::to_string(l) +
           " sent != delivered + in_flight + written_off");
    }
    if (!lk.seq_books_ok()) {
      fail("link seq books: link " + std::to_string(l));
    }
  }
  if (!events.empty() && r.faults_injected != events.size()) {
    fail("fault plan fired " + std::to_string(r.faults_injected) + " of " +
         std::to_string(events.size()) + " events");
  }
  if (corrupting && spec.reliable_links && !permanent) {
    // The whole point of the reliable layer: corrupt words become
    // retransmits with zero damage.
    if (r.errors != 0 || r.lost != 0 || r.delivered_corrupt != 0) {
      fail("reliable links leaked damage: errors " + std::to_string(r.errors) +
           " lost " + std::to_string(r.lost) + " delivered_corrupt " +
           std::to_string(r.delivered_corrupt));
    }
    if (fabric.fault_plan().corrupt_applied() > 0 && r.retransmits == 0) {
      fail("corrupt words applied but no retransmits recorded");
    }
  }
  if (!corrupting && !permanent) {
    // Timing-only mixes (stalls, clean) must be damage-free regardless of
    // the reliable layer.
    if (r.errors != 0 || r.lost != 0) {
      fail("timing-only mix did damage: errors " + std::to_string(r.errors) +
           " lost " + std::to_string(r.lost));
    }
    if (!r.drained) fail("timing-only mix failed to drain");
    if (r.degraded) fail("timing-only mix ended degraded");
  }
  if (permanent && spec.failover) {
    if (!r.degraded) fail("permanent fault but the run never went degraded");
    if (r.failover_generation < 1) fail("permanent fault but no reroute");
    if (!r.drained) {
      fail("degraded run did not drain cleanly (losses unexplained)");
    }
  }
  if (r.delivered == 0) fail("no packets delivered");

  r.pass = r.failure.empty();
  return r;
}

std::vector<ClusterChaosMix> standard_cluster_mixes() {
  std::vector<ClusterChaosMix> mixes;
  ClusterChaosMix m;
  mixes.push_back(m);  // clean control
  m = {}; m.corrupts = true; mixes.push_back(m);
  m = {}; m.stalls = true; mixes.push_back(m);
  m = {}; m.cuts = true; mixes.push_back(m);
  m = {}; m.freezes = true; mixes.push_back(m);
  m = {}; m.corrupts = true; m.stalls = true; mixes.push_back(m);
  m = {}; m.corrupts = true; m.cuts = true; mixes.push_back(m);
  m = {}; m.stalls = true; m.freezes = true; mixes.push_back(m);
  return mixes;
}

bool parse_cluster_mix(const std::string& s, ClusterChaosMix* out) {
  ClusterChaosMix mix;
  if (s != "clean") {
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t next = s.find('+', pos);
      const std::string kind =
          s.substr(pos, next == std::string::npos ? next : next - pos);
      if (kind == "corrupt") {
        mix.corrupts = true;
      } else if (kind == "stall") {
        mix.stalls = true;
      } else if (kind == "cut") {
        mix.cuts = true;
      } else if (kind == "freeze") {
        mix.freezes = true;
      } else {
        return false;
      }
      if (next == std::string::npos) break;
      pos = next + 1;
    }
    if (!mix.any()) return false;
  }
  *out = mix;
  return true;
}

ClusterChaosSweepSummary cluster_chaos_sweep(int num_seeds,
                                             common::Cycle run_cycles,
                                             int num_chips, int threads) {
  ClusterChaosSweepSummary summary;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(num_seeds);
       ++seed) {
    for (const ClusterChaosMix& mix : standard_cluster_mixes()) {
      ClusterChaosSpec spec;
      spec.seed = seed;
      spec.mix = mix;
      spec.num_chips = num_chips;
      spec.threads = threads;
      spec.run_cycles = run_cycles;
      spec.reliable_links = true;
      spec.failover = true;
      ClusterChaosResult r = run_cluster_chaos(spec);
      ++summary.total;
      if (r.pass) ++summary.passed;
      summary.results.push_back(std::move(r));
    }
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Repro bundles. The schema is small and fixed, so the writer is a handful
// of append helpers and the reader a minimal recursive-descent pass over
// exactly what to_json emits (same approach as router/repro.cc).

namespace {

void append_escaped(std::string& s, const std::string& v) {
  s += '"';
  for (const char c : v) {
    switch (c) {
      case '"': s += "\\\""; break;
      case '\\': s += "\\\\"; break;
      case '\n': s += "\\n"; break;
      case '\t': s += "\\t"; break;
      case '\r': s += "\\r"; break;
      default: s += c; break;
    }
  }
  s += '"';
}

void append_double(std::string& s, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  s += buf;
}

void append_hex64(std::string& s, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  s += '"';
  s += buf;
  s += '"';
}

const char* topology_name(TopologyKind t) {
  switch (t) {
    case TopologyKind::kPointToPoint: return "point_to_point";
    case TopologyKind::kLeafSpine: return "leaf_spine";
    case TopologyKind::kFatTree: return "fat_tree";
  }
  return "leaf_spine";
}

bool topology_from_name(const std::string& s, TopologyKind* out) {
  if (s == "point_to_point") {
    *out = TopologyKind::kPointToPoint;
  } else if (s == "leaf_spine") {
    *out = TopologyKind::kLeafSpine;
  } else if (s == "fat_tree") {
    *out = TopologyKind::kFatTree;
  } else {
    return false;
  }
  return true;
}

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(i);
    return false;
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r' || s[i] == ',')) {
      ++i;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char e = s[i++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: c = e; break;
        }
      }
      *out += c;
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
            s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E')) {
      ++i;
    }
    if (i == start) return fail("expected number");
    *out = std::strtod(s.c_str() + start, nullptr);
    return true;
  }

  bool parse_bool(bool* out) {
    skip_ws();
    if (s.compare(i, 4, "true") == 0) {
      *out = true;
      i += 4;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      *out = false;
      i += 5;
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_hex64(std::uint64_t* out) {
    std::string hex;
    if (!parse_string(&hex)) return false;
    *out = std::strtoull(hex.c_str(), nullptr, 16);
    return true;
  }

  bool skip_value();  // skip any value (unknown keys)
};

bool Parser::skip_value() {
  skip_ws();
  if (i >= s.size()) return fail("unexpected end");
  if (s[i] == '"') {
    std::string tmp;
    return parse_string(&tmp);
  }
  if (s[i] == '{' || s[i] == '[') {
    const char open = s[i];
    const char close = open == '{' ? '}' : ']';
    int depth = 0;
    bool in_string = false;
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') in_string = true;
      if (c == open) ++depth;
      if (c == close && --depth == 0) {
        ++i;
        return true;
      }
    }
    return fail("unterminated value");
  }
  double tmp = 0;
  bool b = false;
  if (s[i] == 't' || s[i] == 'f') return parse_bool(&b);
  return parse_number(&tmp);
}

}  // namespace

std::string to_json(const ClusterChaosRepro& repro) {
  std::string j = "{\n  \"schema\": \"raw-cluster-chaos-repro/v1\",\n";
  j += "  \"spec\": {";
  j += "\"seed\": " + std::to_string(repro.spec.seed);
  j += ", \"mix\": ";
  append_escaped(j, repro.spec.mix.name());
  j += ", \"num_chips\": " + std::to_string(repro.spec.num_chips);
  j += ", \"topology\": ";
  append_escaped(j, topology_name(repro.spec.topology));
  j += ", \"run_cycles\": " + std::to_string(repro.spec.run_cycles);
  j += ", \"drain_cycles\": " + std::to_string(repro.spec.drain_cycles);
  j += ", \"faults_per_kind\": " + std::to_string(repro.spec.faults_per_kind);
  j += ", \"threads\": " + std::to_string(repro.spec.threads);
  j += std::string(", \"reliable_links\": ") +
       (repro.spec.reliable_links ? "true" : "false");
  j += std::string(", \"failover\": ") +
       (repro.spec.failover ? "true" : "false");
  j += ", \"watchdog_interval\": " +
       std::to_string(repro.spec.watchdog_interval);
  j += ", \"load\": ";
  append_double(j, repro.spec.load);
  j += ", \"bytes\": " + std::to_string(repro.spec.bytes);
  j += ", \"remote_fraction\": ";
  append_double(j, repro.spec.remote_fraction);
  j += "},\n  \"events\": [";
  for (std::size_t k = 0; k < repro.events.size(); ++k) {
    const ClusterFaultEvent& e = repro.events[k];
    if (k != 0) j += ",";
    j += "\n    {\"kind\": ";
    append_escaped(j, cluster_fault_kind_name(e.kind));
    j += ", \"at\": " + std::to_string(e.at);
    j += ", \"duration\": " + std::to_string(e.duration);
    j += ", \"link\": " + std::to_string(e.link);
    j += ", \"chip\": " + std::to_string(e.chip);
    j += ", \"bit\": " + std::to_string(e.bit);
    j += "}";
  }
  j += "\n  ],\n";
  j += std::string("  \"pass\": ") + (repro.pass ? "true" : "false") + ",\n";
  j += "  \"failure\": ";
  append_escaped(j, repro.failure);
  j += ",\n";
  j += std::string("  \"degraded\": ") + (repro.degraded ? "true" : "false") +
       ",\n";
  j += std::string("  \"drained\": ") + (repro.drained ? "true" : "false") +
       ",\n";
  j += "  \"digest\": ";
  append_hex64(j, repro.digest);
  j += "\n}\n";
  return j;
}

bool from_json(const std::string& text, ClusterChaosRepro* out,
               std::string* error) {
  Parser p{text, 0, {}};
  ClusterChaosRepro r;
  const auto done = [&](bool ok) {
    if (!ok && error != nullptr) *error = p.err;
    if (ok) *out = std::move(r);
    return ok;
  };
  if (!p.consume('{')) return done(false);
  std::string key;
  while (!p.peek('}')) {
    if (!p.parse_string(&key) || !p.consume(':')) return done(false);
    double num = 0;
    std::string str;
    if (key == "schema") {
      if (!p.parse_string(&str)) return done(false);
      if (str != "raw-cluster-chaos-repro/v1") {
        p.fail("unknown schema " + str);
        return done(false);
      }
    } else if (key == "spec") {
      if (!p.consume('{')) return done(false);
      while (!p.peek('}')) {
        if (!p.parse_string(&key) || !p.consume(':')) return done(false);
        if (key == "seed") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.seed = static_cast<std::uint64_t>(num);
        } else if (key == "mix") {
          if (!p.parse_string(&str)) return done(false);
          if (!parse_cluster_mix(str, &r.spec.mix)) {
            p.fail("unknown mix " + str);
            return done(false);
          }
        } else if (key == "num_chips") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.num_chips = static_cast<int>(num);
        } else if (key == "topology") {
          if (!p.parse_string(&str)) return done(false);
          if (!topology_from_name(str, &r.spec.topology)) {
            p.fail("unknown topology " + str);
            return done(false);
          }
        } else if (key == "run_cycles") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.run_cycles = static_cast<common::Cycle>(num);
        } else if (key == "drain_cycles") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.drain_cycles = static_cast<common::Cycle>(num);
        } else if (key == "faults_per_kind") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.faults_per_kind = static_cast<int>(num);
        } else if (key == "threads") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.threads = static_cast<int>(num);
        } else if (key == "reliable_links") {
          if (!p.parse_bool(&r.spec.reliable_links)) return done(false);
        } else if (key == "failover") {
          if (!p.parse_bool(&r.spec.failover)) return done(false);
        } else if (key == "watchdog_interval") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.watchdog_interval = static_cast<common::Cycle>(num);
        } else if (key == "load") {
          if (!p.parse_number(&r.spec.load)) return done(false);
        } else if (key == "bytes") {
          if (!p.parse_number(&num)) return done(false);
          r.spec.bytes = static_cast<common::ByteCount>(num);
        } else if (key == "remote_fraction") {
          if (!p.parse_number(&r.spec.remote_fraction)) return done(false);
        } else {
          if (!p.skip_value()) return done(false);
        }
      }
      if (!p.consume('}')) return done(false);
    } else if (key == "events") {
      if (!p.consume('[')) return done(false);
      while (!p.peek(']')) {
        if (!p.consume('{')) return done(false);
        ClusterFaultEvent e;
        while (!p.peek('}')) {
          if (!p.parse_string(&key) || !p.consume(':')) return done(false);
          if (key == "kind") {
            if (!p.parse_string(&str)) return done(false);
            if (str == "trunk_corrupt") {
              e.kind = ClusterFaultKind::kTrunkCorrupt;
            } else if (str == "trunk_stall") {
              e.kind = ClusterFaultKind::kTrunkStall;
            } else if (str == "trunk_cut") {
              e.kind = ClusterFaultKind::kTrunkCut;
            } else if (str == "chip_freeze") {
              e.kind = ClusterFaultKind::kChipFreeze;
            } else {
              p.fail("unknown fault kind " + str);
              return done(false);
            }
          } else if (key == "at") {
            if (!p.parse_number(&num)) return done(false);
            e.at = static_cast<common::Cycle>(num);
          } else if (key == "duration") {
            if (!p.parse_number(&num)) return done(false);
            e.duration = static_cast<std::uint64_t>(num);
          } else if (key == "link") {
            if (!p.parse_number(&num)) return done(false);
            e.link = static_cast<int>(num);
          } else if (key == "chip") {
            if (!p.parse_number(&num)) return done(false);
            e.chip = static_cast<int>(num);
          } else if (key == "bit") {
            if (!p.parse_number(&num)) return done(false);
            e.bit = static_cast<std::uint32_t>(num);
          } else {
            if (!p.skip_value()) return done(false);
          }
        }
        if (!p.consume('}')) return done(false);
        r.events.push_back(e);
      }
      if (!p.consume(']')) return done(false);
    } else if (key == "pass") {
      if (!p.parse_bool(&r.pass)) return done(false);
    } else if (key == "failure") {
      if (!p.parse_string(&r.failure)) return done(false);
    } else if (key == "degraded") {
      if (!p.parse_bool(&r.degraded)) return done(false);
    } else if (key == "drained") {
      if (!p.parse_bool(&r.drained)) return done(false);
    } else if (key == "digest") {
      if (!p.parse_hex64(&r.digest)) return done(false);
    } else {
      if (!p.skip_value()) return done(false);
    }
  }
  if (!p.consume('}')) return done(false);
  return done(true);
}

ClusterChaosResult replay_cluster_repro(const ClusterChaosRepro& repro,
                                        std::string* why) {
  ClusterChaosResult r = run_cluster_chaos_events(repro.spec, repro.events);
  std::string mismatch;
  if (r.digest != repro.digest) {
    mismatch = "digest mismatch";
  } else if (r.degraded != repro.degraded) {
    mismatch = "degraded-status mismatch";
  } else if (r.drained != repro.drained) {
    mismatch = "drain-outcome mismatch";
  }
  if (!mismatch.empty()) {
    r.pass = false;
    if (r.failure.empty()) r.failure = "replay: " + mismatch;
    if (why != nullptr) *why = mismatch;
  }
  return r;
}

}  // namespace raw::cluster
