// Serial-vs-parallel differential tests through the full router stack.
//
// The engine's contract is bit-identical simulation at any worker count, so
// these tests run identical router configurations under 1/2/4/8 workers and
// compare every externally observable total: packet accounting, ledger
// disposition, static-network word counts, the final cycle, and (separately)
// the packet tracer's event stream including ring-buffer eviction. The fault
// differential goes through the chaos harness so flips, stalls, freezes, and
// overruns — plus the watchdog's run_until drain paths — are all covered.
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace_event.h"
#include "net/route_table.h"
#include "net/traffic.h"
#include "router/chaos.h"
#include "router/raw_router.h"

namespace raw::router {
namespace {

struct RouterTotals {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_card = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;
  std::uint64_t erased_delivered = 0;
  std::uint64_t erased_invalid = 0;
  std::uint64_t erased_ingress = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t static_words = 0;
  std::uint64_t cycle = 0;

  bool operator==(const RouterTotals&) const = default;
};

std::string describe(const RouterTotals& t) {
  return "offered=" + std::to_string(t.offered) +
         " delivered=" + std::to_string(t.delivered) +
         " dropped=" + std::to_string(t.dropped_card) +
         " errors=" + std::to_string(t.errors) +
         " lost=" + std::to_string(t.lost) +
         " e_dlv=" + std::to_string(t.erased_delivered) +
         " e_inv=" + std::to_string(t.erased_invalid) +
         " e_ing=" + std::to_string(t.erased_ingress) +
         " in_flight=" + std::to_string(t.in_flight) +
         " words=" + std::to_string(t.static_words) +
         " cycle=" + std::to_string(t.cycle);
}

net::TrafficConfig make_traffic(net::DestPattern pattern) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = pattern;
  t.size = net::SizeDist::kBimodal;
  t.load = 0.9;
  return t;
}

RouterTotals run_router(net::DestPattern pattern, std::uint64_t seed,
                        int threads, common::Cycle cycles) {
  RouterConfig cfg;
  cfg.threads = threads;
  RawRouter router(cfg, net::RouteTable::simple4(), make_traffic(pattern),
                   seed);
  EXPECT_EQ(router.threads(), threads);
  (void)router.run(cycles);
  RouterTotals t;
  t.offered = router.offered_packets();
  t.delivered = router.delivered_packets();
  t.dropped_card = router.dropped_at_card();
  t.errors = router.errors();
  t.lost = router.lost_packets();
  t.erased_delivered = router.ledger().erased_delivered;
  t.erased_invalid = router.ledger().erased_invalid;
  t.erased_ingress = router.ledger().erased_ingress;
  t.in_flight = router.ledger().in_flight.size();
  t.static_words = router.chip().static_words_transferred();
  t.cycle = router.chip().cycle();
  return t;
}

class ExecRouterDifferential
    : public ::testing::TestWithParam<std::tuple<net::DestPattern,
                                                 std::uint64_t>> {};

TEST_P(ExecRouterDifferential, TotalsIdenticalAcrossThreadCounts) {
  const auto [pattern, seed] = GetParam();
  constexpr common::Cycle kCycles = 2500;
  const RouterTotals serial = run_router(pattern, seed, 1, kCycles);
  EXPECT_GT(serial.delivered, 0u);
  for (const int t : {2, 4, 8}) {
    const RouterTotals par = run_router(pattern, seed, t, kCycles);
    EXPECT_EQ(par, serial) << "threads=" << t << "\n  serial: "
                           << describe(serial) << "\nparallel: "
                           << describe(par);
  }
}

// Instantiation name keeps the Exec prefix so `ctest -R '^Exec'` (the TSan
// CI job's selection) picks these up.
INSTANTIATE_TEST_SUITE_P(
    ExecPatternsAndSeeds, ExecRouterDifferential,
    ::testing::Combine(::testing::Values(net::DestPattern::kUniform,
                                         net::DestPattern::kPermutation,
                                         net::DestPattern::kHotspot),
                       ::testing::Values(std::uint64_t{11},
                                         std::uint64_t{29})));

struct ChaosTotals {
  bool pass = false;
  int outcome = 0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_card = 0;
  std::uint64_t ingress_drops = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;
  std::uint64_t malformed = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t faults_injected = 0;

  bool operator==(const ChaosTotals&) const = default;
};

ChaosTotals run_chaos_at(const char* mix_str, std::uint64_t seed, int threads,
                         common::Cycle cycles) {
  ChaosSpec spec;
  ChaosMix mix;
  EXPECT_TRUE(parse_mix(mix_str, &mix));
  spec.seed = seed;
  spec.mix = mix;
  spec.run_cycles = cycles;
  spec.threads = threads;
  const ChaosResult r = run_chaos(spec);
  ChaosTotals t;
  t.pass = r.pass;
  t.outcome = static_cast<int>(r.outcome);
  t.offered = r.offered;
  t.delivered = r.delivered;
  t.dropped_card = r.dropped_card;
  t.ingress_drops = r.ingress_drops;
  t.errors = r.errors;
  t.lost = r.lost;
  t.malformed = r.malformed;
  t.resyncs = r.resyncs;
  t.watchdog_trips = r.watchdog_trips;
  t.faults_injected = r.faults_injected;
  return t;
}

// Faults exercise the engine's serial fault phase, the mutex-protected
// ingress ledger drops, frozen-tile skipping, and the watchdog's
// run_until-driven drain — all under the full transient mix.
TEST(ExecChaosDifferential, FullTransientMixIdenticalAcrossThreads) {
  constexpr const char* kMix = "flip+stall+freeze+overrun";
  constexpr common::Cycle kCycles = 6000;
  const ChaosTotals serial = run_chaos_at(kMix, 3, 1, kCycles);
  EXPECT_GT(serial.faults_injected, 0u);
  for (const int t : {2, 4}) {
    EXPECT_EQ(run_chaos_at(kMix, 3, t, kCycles), serial) << "threads=" << t;
  }
}

TEST(ExecChaosDifferential, FlipStallMixIdenticalAcrossThreads) {
  constexpr common::Cycle kCycles = 6000;
  const ChaosTotals serial = run_chaos_at("flip+stall", 5, 1, kCycles);
  for (const int t : {2, 8}) {
    EXPECT_EQ(run_chaos_at("flip+stall", 5, t, kCycles), serial)
        << "threads=" << t;
  }
}

std::vector<common::PacketTracer::Record> run_traced(int threads,
                                                     std::size_t budget) {
  RouterConfig cfg;
  cfg.threads = threads;
  RawRouter router(cfg, net::RouteTable::simple4(),
                   make_traffic(net::DestPattern::kUniform), 17);
  common::PacketTracer tracer;
  router.set_tracer(&tracer);
  tracer.enable(budget);
  (void)router.run(1500);
  return tracer.events();
}

// The tracer's ring buffer must hold the exact same event sequence —
// including which events eviction discarded — at any worker count. The
// small budget forces heavy eviction so shard-merge ordering is load-bearing.
TEST(ExecTracerDifferential, EventStreamIdenticalAcrossThreads) {
  const auto serial = run_traced(1, 512);
  ASSERT_FALSE(serial.empty());
  for (const int t : {2, 4}) {
    const auto par = run_traced(t, 512);
    ASSERT_EQ(par.size(), serial.size()) << "threads=" << t;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(par[i].uid, serial[i].uid) << "threads=" << t << " i=" << i;
      ASSERT_EQ(par[i].cycle, serial[i].cycle) << "i=" << i;
      ASSERT_EQ(par[i].event, serial[i].event) << "i=" << i;
      ASSERT_EQ(par[i].track, serial[i].track) << "i=" << i;
      ASSERT_EQ(par[i].arg, serial[i].arg) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace raw::router
