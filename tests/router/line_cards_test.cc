#include "router/line_cards.h"

#include <gtest/gtest.h>

#include "sim/chip.h"

namespace raw::router {
namespace {

TEST(TestPacketTest, UidRoundTripsThroughHeaderFields) {
  for (const std::uint64_t uid : {1ull, 0xffffull, 0x10000ull, 0xabcdef12ull}) {
    const net::Packet p = make_test_packet(uid, 2, 3, 128);
    EXPECT_EQ(uid_of(p.header), uid & 0xffffffff);
    EXPECT_EQ(src_port_of(p.header), 2);
    EXPECT_TRUE(net::checksum_ok(p.header));
  }
}

TEST(TestPacketTest, DeterministicPerUid) {
  const net::Packet a = make_test_packet(42, 0, 1, 256);
  const net::Packet b = make_test_packet(42, 0, 1, 256);
  EXPECT_EQ(a.header, b.header);
  EXPECT_EQ(a.payload, b.payload);
}

class LineCardTest : public ::testing::Test {
 protected:
  LineCardTest() : chip_(sim::ChipConfig{}) {}

  sim::Chip chip_;
  PacketLedger ledger_;
};

TEST_F(LineCardTest, InputCardPacesArrivalsAtLineRate) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 64;  // 16 words
  t.load = 1.0;
  net::TrafficGen gen(t, 1);
  const sim::IoPort port = chip_.io_port(0, 4, sim::Dir::kWest);
  InputLineCard card(port.to_chip, 0, &gen, &ledger_, 1 << 16);
  chip_.add_device(&card);

  // Nothing drains the channel, so the card backs up after the FIFO fills,
  // but generation continues (open loop) at one packet per 16 cycles.
  chip_.run(1600);
  EXPECT_EQ(card.offered_packets(), 100u);
}

TEST_F(LineCardTest, InputCardDropsWhenQueueFull) {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 1024;
  net::TrafficGen gen(t, 2);
  const sim::IoPort port = chip_.io_port(0, 4, sim::Dir::kWest);
  InputLineCard card(port.to_chip, 0, &gen, &ledger_, /*capacity=*/512);
  chip_.add_device(&card);
  chip_.run(20000);  // nothing drains: the 512-word queue overflows
  EXPECT_GT(card.dropped_packets(), 0u);
  EXPECT_EQ(card.offered_packets(),
            card.dropped_packets() + ledger_.in_flight.size());
}

TEST_F(LineCardTest, StopHaltsGeneration) {
  net::TrafficConfig t;
  t.num_ports = 4;
  net::TrafficGen gen(t, 3);
  const sim::IoPort port = chip_.io_port(0, 4, sim::Dir::kWest);
  InputLineCard card(port.to_chip, 0, &gen, &ledger_, 1 << 16);
  chip_.add_device(&card);
  chip_.run(100);
  card.stop();
  const auto offered = card.offered_packets();
  chip_.run(1000);
  EXPECT_EQ(card.offered_packets(), offered);
}

TEST_F(LineCardTest, LoopbackDeliveryValidates) {
  // Wire an input card's words straight back into an output card through a
  // row of pass-through switches: every packet must validate except for the
  // TTL check — so the output card must count them as errors... The card
  // expects a TTL decremented exactly once, so un-routed loopback traffic
  // is the right way to test that the validation actually fires.
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kLoopback;  // dst port 0 == src port
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 64;
  t.load = 0.5;
  net::TrafficGen gen(t, 4);
  std::string error;
  for (int tile : {4, 5, 6, 7}) {
    sim::SwitchProgram p = sim::assemble("loop: jump loop | W>E", &error);
    ASSERT_TRUE(error.empty());
    chip_.tile(tile).switch_proc().load(
        std::make_shared<const sim::SwitchProgram>(std::move(p)));
  }
  InputLineCard in(chip_.io_port(0, 4, sim::Dir::kWest).to_chip, 0, &gen,
                   &ledger_, 1 << 16);
  OutputLineCard out(chip_.io_port(0, 7, sim::Dir::kEast).from_chip, 0,
                     &ledger_);
  chip_.add_device(&in);
  chip_.add_device(&out);
  chip_.run(10000);
  // Packets arrive intact but with an un-decremented TTL: all "errors".
  EXPECT_EQ(out.delivered_packets(), 0u);
  EXPECT_GT(out.errors(), 0u);
}

}  // namespace
}  // namespace raw::router
