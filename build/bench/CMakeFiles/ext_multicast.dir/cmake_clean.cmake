file(REMOVE_RECURSE
  "CMakeFiles/ext_multicast.dir/ext_multicast.cc.o"
  "CMakeFiles/ext_multicast.dir/ext_multicast.cc.o.d"
  "ext_multicast"
  "ext_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
