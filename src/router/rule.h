// The Rotating Crossbar global routing rule (chapter 5).
//
// The four Crossbar Processors form a ring with one full-duplex
// static-network connection between neighbours; the clockwise and
// counter-clockwise directions are independent resources, as is each
// crossbar-to-egress link. Once per routing quantum every crossbar tile
// evaluates the *same deterministic rule* on the same inputs (the token
// position and the four exchanged headers), so all tiles agree on the
// crossbar configuration without any arbitration traffic — the token is a
// synchronous local counter, never transmitted (§5.1).
//
// The rule walks the inputs downstream from the token owner. Each non-empty
// input claims its egress(es) and a ring path — the shorter direction first,
// falling back to the other — provided every required directed ring edge and
// egress is free; otherwise that input stalls for this quantum. The token
// owner always wins (fairness: every input sends at least once every R
// quanta); allocations never form cycles, so the compile-time schedules are
// conflict-free and the static network cannot deadlock (§5.4, §5.5).
//
// The rule is generic in the ring size R (the §8.5 scalability study); the
// thesis instance is R = 4. Destinations are a port *bit mask* so the §8.6
// multicast extension (one ingress to several egresses) falls out naturally:
// a multicast claim takes a clockwise arc and a counter-clockwise arc that
// together cover all destinations, and is granted all-or-nothing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace raw::router {

/// Maximum ring size supported by the fixed-size rule structures.
inline constexpr int kMaxRingSize = 16;

/// Per-input request header as exchanged between crossbar tiles: a
/// destination port mask (0 = empty input) plus the words remaining in the
/// current fragment.
struct HeaderReq {
  std::uint32_t out_mask = 0;  // bit j set: destined to egress j
  std::uint32_t words = 0;     // fragment length (words still to send)

  [[nodiscard]] bool empty() const { return out_mask == 0; }
};

/// The resolved crossbar configuration for one quantum.
struct RingConfig {
  int ring_size = 4;

  /// Occupant input of each directed ring edge, -1 if free.
  /// cw_edge[i] is the edge from tile i to tile (i+1) % R;
  /// ccw_edge[i] is the edge from tile i to tile (i-1+R) % R.
  std::array<int, kMaxRingSize> cw_edge{};
  std::array<int, kMaxRingSize> ccw_edge{};
  /// Occupant input of each crossbar->egress link, -1 if free.
  std::array<int, kMaxRingSize> egress{};
  /// Granted flag per input (all requested egresses were claimed).
  std::array<bool, kMaxRingSize> granted{};
  /// Destinations served clockwise / counter-clockwise per input.
  std::array<std::uint32_t, kMaxRingSize> cw_mask{};
  std::array<std::uint32_t, kMaxRingSize> ccw_mask{};
  /// Words each granted input streams this quantum (its fragment length,
  /// capped by RuleOptions::quantum_cap); 0 for non-granted inputs.
  std::array<std::uint32_t, kMaxRingSize> grant_words{};

  /// Number of granted inputs.
  [[nodiscard]] int grant_count() const {
    int n = 0;
    for (int i = 0; i < ring_size; ++i) n += granted[static_cast<std::size_t>(i)] ? 1 : 0;
    return n;
  }
};

struct RuleOptions {
  /// When false, an input whose shorter direction is blocked does NOT try
  /// the opposite direction (ablation knob; the thesis design falls back).
  bool direction_fallback = true;
  /// Fragment cap in words: a granted stream transfers
  /// fragment_words(header.words, quantum_cap) this quantum. Streams have
  /// *independent* lengths — the switch blocks are multi-phase, dropping
  /// each stream's moves as its count expires. 0 = uncapped.
  std::uint32_t quantum_cap = 0;
};

/// Words a stream with `remaining` words transfers under `cap`: the whole
/// remainder if it fits, otherwise `cap` — backed off by up to 4 words so
/// the *next* fragment is never shorter than the software-pipeline depth
/// (tiny tails would underflow the prologue staggering). With cap >= 9
/// every fragment is at least 5 words (the IP header size floor).
constexpr std::uint32_t fragment_words(std::uint32_t remaining,
                                       std::uint32_t cap) {
  if (cap == 0 || remaining <= cap) return remaining;
  if (remaining - cap < 5) return cap - 4;
  return cap;
}

/// Evaluates the global rule. `headers[i]` is input i's request; `token` is
/// the ring index holding the token. Deterministic and side-effect free —
/// every crossbar tile calls this with identical arguments.
RingConfig evaluate_rule(std::span<const HeaderReq> headers, int token,
                         RuleOptions options = {});

/// Clockwise distance from ring position `from` to `to`.
int cw_distance(int ring_size, int from, int to);

/// All destinations reachable, single static network: the §5.3 property —
/// whenever requested egresses are all distinct (no output contention),
/// every non-empty input is granted. Checked exhaustively in tests.

}  // namespace raw::router
