# Empty dependencies file for ablate_fairness.
# This may be replaced when dependencies are built.
