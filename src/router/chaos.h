// Chaos harness: seeded fault mixes driven through the full router with the
// self-protection invariants checked afterwards.
//
// Each (seed, mix) combination builds a FaultPlan from the mix's fault
// kinds, runs the router under uniform traffic, drains, and verifies:
//
//   * packet conservation — every offered packet is accounted for as
//     delivered, dropped at a card, dropped at an ingress, invalid at an
//     output card, lost (written off at drain), or still in flight;
//   * no silent hang — the run either completes, quiesces with explained
//     losses, or stops with a StallReport; a watchdog trip is a pass only
//     when the mix injected a permanent tile freeze, and the report must
//     name that tile as frozen;
//   * no unexplained damage — validation errors, malformed drops, resyncs
//     and losses appear only under corrupting (bit-flip) mixes;
//   * the router still forwards — delivered packets (which are validated
//     end-to-end by the output cards) stay nonzero.
//
// Used by tools/rawchaos (interactive), bench/chaos_soak (full sweep), and
// the tier2 ctest soak (bounded sweep).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "router/raw_router.h"
#include "sim/fault_plan.h"

namespace raw::router {

/// Which fault kinds a run injects.
struct ChaosMix {
  bool bitflips = false;
  bool stalls = false;
  bool freezes = false;  // transient windows
  bool overruns = false;
  bool permanent_freeze = false;

  /// Only bit flips corrupt words; everything else just perturbs timing.
  [[nodiscard]] bool corrupting() const { return bitflips; }
  [[nodiscard]] bool any() const {
    return bitflips || stalls || freezes || overruns || permanent_freeze;
  }
  [[nodiscard]] std::string name() const;
};

struct ChaosSpec {
  std::uint64_t seed = 1;
  ChaosMix mix;
  common::Cycle run_cycles = 40000;
  common::Cycle drain_cycles = 400000;
  /// Scheduled events per enabled transient kind.
  int faults_per_kind = 6;
  common::ByteCount bytes = 256;
  double load = 0.9;
  /// Execution-engine worker threads (RouterConfig::threads semantics).
  int threads = 0;
  /// Reliable-link layer (RouterConfig::link): bit flips become retransmits,
  /// so the validation expects *zero* damage even under corrupting mixes.
  bool reliable_links = false;
  /// Fault-adaptive reconfiguration (RouterConfig::recovery): a permanent
  /// tile freeze must end Degraded and keep delivering, not Stalled.
  bool recovery = false;
  /// Force the dense reference engine (differential testing).
  bool force_dense = false;
  /// Engine profiler to attach for the run (not owned; null = no profiling).
  /// The harness starts/stops its wall clock around run+drain, so flight
  /// snapshots and stall marks land inside the profiled window (see
  /// RawRouter::set_profiler). Profiling never changes results: digests are
  /// identical with or without it.
  common::Profiler* profiler = nullptr;
  /// Named traffic profile ("uniform", "permutation", "hotspot", "bursty",
  /// "imix", "pareto"); "" keeps the legacy fixed-size uniform workload
  /// bit-for-bit (the default every existing caller relies on). See
  /// traffic_for().
  std::string traffic_profile;
  /// Endurance layer (RouterConfig::endurance). When enabled the run arms an
  /// InvariantMonitor — `monitor` if provided (not owned, not serialized;
  /// lets the soak share a memory sentinel across epochs), else a run-local
  /// one — and the result carries the checkpoint anchors.
  EnduranceConfig endurance;
  sim::InvariantMonitor* monitor = nullptr;
  /// Soak self-test: when nonzero, registers an always-failing check armed
  /// at this chip cycle, proving the violation -> bundle -> anchored-replay
  /// path end to end. Serialized in repro bundles (the replay must fail at
  /// the same cycle).
  common::Cycle inject_invariant_failure_at = 0;
  /// When non-empty and the run fails with endurance armed, the checkpoint
  /// ring is spilled to this directory (not serialized).
  std::string checkpoint_spill_dir;
};

/// A checkpoint the failure bundle can anchor a replay at: the capture
/// cycle plus the chip and router digests the replay must reproduce there.
struct ReplayAnchor {
  common::Cycle cycle = 0;
  std::uint64_t chip_digest = 0;
  std::uint64_t router_digest = 0;
};

struct ChaosResult {
  bool pass = false;
  std::string failure;  // first violated invariant, empty on pass
  std::uint64_t seed = 0;
  std::string mix;
  DrainOutcome outcome = DrainOutcome::kDrained;
  bool stalled_in_run = false;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_card = 0;
  std::uint64_t ingress_drops = 0;  // ttl + no-route + malformed (ledger view)
  std::uint64_t errors = 0;         // output-card validation failures
  std::uint64_t lost = 0;
  std::uint64_t malformed = 0;      // ingress integrity-check drops
  std::uint64_t resyncs = 0;        // output-card realignment episodes
  std::uint64_t watchdog_trips = 0;
  std::uint64_t faults_injected = 0;
  std::string stall_summary;  // StallReport::to_string() when one was raised
  /// First tile a StallReport blames as frozen (-1 when none): the
  /// replay/minimizer signature needs the *where*, not just the *that*.
  int stall_tile = -1;
  /// Fault-adaptive recovery observability.
  bool degraded = false;
  int schedule_generation = 0;
  /// Reliable-link counters (zero when the layer is disabled).
  std::uint64_t link_retransmits = 0;
  std::uint64_t link_delivered_corrupt = 0;
  /// RawRouter::state_digest() at exit: the record/replay and
  /// engine-equivalence fingerprint.
  std::uint64_t digest = 0;
  /// Endurance observability (all zero/empty unless endurance was enabled).
  std::string invariant_failure;  // "name: detail" of the violation, if any
  common::Cycle invariant_failure_cycle = 0;
  bool invariant_deterministic = true;
  std::uint64_t invariant_sweeps = 0;
  std::uint64_t checkpoints_captured = 0;
  std::uint64_t checkpoints_skipped = 0;
  /// Checkpoint ring contents at exit, oldest first.
  std::vector<ReplayAnchor> anchors;
  /// Chip cycle at exit (a checkpoint slide can carry it past run+drain).
  common::Cycle end_cycle = 0;
};

/// The RouterConfig a chaos/soak run builds from `spec` — exported so
/// anchored replay (router/soak.h) reconstructs the identical router.
RouterConfig router_config_for(const ChaosSpec& spec);

/// The TrafficConfig for spec's named profile (empty = legacy uniform
/// fixed-size, bit-identical to the pre-profile harness). Throws
/// std::invalid_argument on an unknown name. The "pareto" profile is the
/// heavy-tailed bounded-Pareto flow mode (net::TrafficConfig::pareto_flows).
net::TrafficConfig traffic_for(const ChaosSpec& spec);

/// Builds the seeded fault schedule for `spec` against `router`'s chip.
/// Bit flips target only the chip-edge (line-card) channels — on-chip
/// control words are the schedule compiler's domain and a flip there models
/// a different fault class than line noise. When the mix includes a
/// permanent freeze, `permanent_tile` (if non-null) receives the tile index.
sim::FaultPlan make_fault_plan(const ChaosSpec& spec, RawRouter& router,
                               int* permanent_tile = nullptr);

/// Runs one (seed, mix) combination and checks every invariant.
ChaosResult run_chaos(const ChaosSpec& spec);

/// Runs `spec`'s router configuration under an *explicit* fault-event
/// schedule instead of the seed-derived one — the replay and delta-debugging
/// path (see router/repro.h). Validation derives its expectations from the
/// events themselves (any kBitFlip => corrupting, any permanent kTileFreeze
/// => permanent), so a minimized subset is judged by the same rules as the
/// full schedule. spec.mix is used only for labelling.
ChaosResult run_chaos_events(const ChaosSpec& spec,
                             const std::vector<sim::FaultEvent>& events);

/// The 13 standard mixes: each kind alone, bit-flip pairs, timing pairs,
/// everything transient, and the two permanent-freeze variants.
std::vector<ChaosMix> standard_mixes();

/// Parses a '+'-separated mix string ("flip+stall+freeze+overrun",
/// "permafreeze") into `out`. Returns false on an unknown kind name.
bool parse_mix(const std::string& s, ChaosMix* out);

struct ChaosSweepSummary {
  int total = 0;
  int passed = 0;
  std::vector<ChaosResult> results;  // every combination, in run order
  [[nodiscard]] bool all_passed() const { return passed == total; }
};

/// Sweeps seeds x standard_mixes(): seeds 1..num_seeds against every mix.
/// `threads` follows RouterConfig::threads (0 = RAWSIM_THREADS, then serial).
/// `reliable_links` / `recovery` enable the self-healing layers for every
/// combination (ChaosSpec::reliable_links / ChaosSpec::recovery semantics).
ChaosSweepSummary chaos_sweep(int num_seeds, common::Cycle run_cycles,
                              int threads = 0, bool reliable_links = false,
                              bool recovery = false);

}  // namespace raw::router
