#include "common/trace_event.h"

#include <cstdio>

#include "common/assert.h"

namespace raw::common {

thread_local int PacketTracer::t_shard_ = -1;

const char* packet_event_name(PacketEvent e) {
  switch (e) {
    case PacketEvent::kArrival: return "arrival";
    case PacketEvent::kHeadOfQueue: return "head_of_queue";
    case PacketEvent::kEnterChip: return "enter_chip";
    case PacketEvent::kLookupDone: return "lookup_done";
    case PacketEvent::kCrossbarGrant: return "crossbar_grant";
    case PacketEvent::kExitChip: return "exit_chip";
    case PacketEvent::kFault: return "fault";
  }
  return "?";
}

void PacketTracer::enable(std::size_t event_budget) {
  RAW_ASSERT_MSG(event_budget > 0, "tracer needs a positive event budget");
  enabled_ = true;
  budget_ = event_budget;
  head_ = 0;
  ring_.clear();
  ring_.reserve(event_budget);
  recorded_ = 0;
}

void PacketTracer::disable() { enabled_ = false; }

void PacketTracer::push(const Record& r) {
  ++recorded_;
  if (ring_.size() < budget_) {
    ring_.push_back(r);
    return;
  }
  ring_[head_] = r;  // overwrite the oldest: keep the most recent window
  head_ = (head_ + 1) % budget_;
}

void PacketTracer::set_track_name(int track, std::string name) {
  track_names_[track] = std::move(name);
}

std::vector<PacketTracer::Record> PacketTracer::events() const {
  std::vector<Record> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string PacketTracer::chrome_json(double clock_hz) const {
  return "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[" +
         chrome_events_json(clock_hz) + "]}";
}

std::string PacketTracer::chrome_events_json(double clock_hz) const {
  const double us_per_cycle = 1e6 / clock_hz;
  std::string out;
  char buf[256];

  // Metadata: name the process and every track that has events or a label.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"rawswitch\"}}";
  std::map<int, std::string> tracks = track_names_;
  for (const Record& r : ring_) {
    tracks.emplace(r.track, "track" + std::to_string(r.track));
  }
  for (const auto& [track, name] : tracks) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  track, name.c_str());
    out += buf;
  }

  for (const Record& r : events()) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"%s\",\"cat\":\"packet\",\"ph\":\"i\","
                  "\"s\":\"t\",\"ts\":%.4f,\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"uid\":%llu,\"arg\":%lu}}",
                  packet_event_name(r.event),
                  static_cast<double>(r.cycle) * us_per_cycle, r.track,
                  static_cast<unsigned long long>(r.uid),
                  static_cast<unsigned long>(r.arg));
    out += buf;
  }
  return out;
}

}  // namespace raw::common
