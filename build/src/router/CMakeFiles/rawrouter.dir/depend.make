# Empty dependencies file for rawrouter.
# This may be replaced when dependencies are built.
