// Deterministic chaos replay: record a run's fault schedule and outcome
// signature as JSON, replay it bit-identically, and delta-debug (ddmin) the
// schedule down to a minimal event subset that reproduces the same
// signature.
//
// The signature deliberately captures only the *shape* of the outcome (did
// it pass, which invariant broke, how the run ended, which tile got the
// blame) and not incidental damage counts: a minimized schedule that stalls
// the same tile the same way is the same bug, even if dropping the
// bit-flip events changed how many packets were mangled along the way.
//
// Everything here is deterministic: run_chaos_events drives a fully seeded
// router, so the same (spec, events) pair produces the same ChaosResult —
// and the same RawRouter::state_digest() — under either engine and any
// worker count. That is what makes a recorded repro replayable and a
// minimization trustworthy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "router/chaos.h"
#include "sim/fault_plan.h"

namespace raw::router {

/// Outcome shape of a chaos run, for "fails identically" comparisons.
struct ChaosSignature {
  bool pass = true;
  /// Failure class: ChaosResult::failure up to the first ':' (the part
  /// before run-specific numbers). Empty on pass.
  std::string category;
  DrainOutcome outcome = DrainOutcome::kDrained;
  bool stalled_in_run = false;
  bool degraded = false;
  /// Tile the StallReport blamed as frozen (-1 when none).
  int stall_tile = -1;

  friend bool operator==(const ChaosSignature&, const ChaosSignature&) = default;
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ChaosSignature signature_of(const ChaosResult& r);

/// A replayable chaos repro: the spec, the explicit fault schedule, and the
/// signature + state digest the run produced. Schema v2 adds the endurance
/// bundle fields (checkpoint anchors, the invariant failure, soak context);
/// they stay empty/zero for v1 documents and for runs without endurance.
struct ChaosRepro {
  ChaosSpec spec;
  std::vector<sim::FaultEvent> events;
  ChaosSignature signature;
  std::uint64_t digest = 0;
  /// Checkpoint anchors (oldest first): replay must reproduce each
  /// (cycle -> chip/router digest) pair on its way to the failure.
  std::vector<ReplayAnchor> anchors;
  /// The invariant failure this bundle pins ("" when the run failed some
  /// other way or passed), and the chip cycle it fired at.
  std::string failure;
  common::Cycle failure_cycle = 0;
  /// Soak context: which epoch of which soak produced this bundle (-1 when
  /// the bundle did not come from a soak) and the soak-absolute cycle the
  /// epoch started at.
  std::int64_t soak_epoch = -1;
  common::Cycle soak_start_cycle = 0;
};

/// Serializes a repro as a self-contained JSON document (schema version 2;
/// digests are written as hex strings because 64-bit values exceed JSON's
/// interoperable integer range). from_json reads v1 and v2.
[[nodiscard]] std::string to_json(const ChaosRepro& repro);

/// Parses a document produced by to_json. On failure returns false and, if
/// `error` is non-null, stores a one-line description.
bool from_json(const std::string& text, ChaosRepro* out,
               std::string* error = nullptr);

struct MinimizeStats {
  std::size_t original_events = 0;
  std::size_t minimized_events = 0;
  /// run_chaos_events invocations the minimizer spent.
  int runs = 0;
};

/// Delta-debugs `events` to a (1-minimal w.r.t. ddmin chunking) subset whose
/// replay under `spec` reproduces `target`. Returns the subset — `events`
/// itself if no smaller reproducer exists. Deterministic: same inputs, same
/// subset.
[[nodiscard]] std::vector<sim::FaultEvent> minimize_events(
    const ChaosSpec& spec, const std::vector<sim::FaultEvent>& events,
    const ChaosSignature& target, MinimizeStats* stats = nullptr);

}  // namespace raw::router
