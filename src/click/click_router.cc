#include "click/click_router.h"

#include "common/assert.h"
#include "router/line_cards.h"  // make_test_packet: same traffic as RawRouter

namespace raw::click {

ClickRouter::ClickRouter(ClickConfig config, net::RouteTable table)
    : config_(config), table_(std::move(table)), cpu_(config.cpu_clock_hz) {
  RAW_ASSERT(config_.num_ports > 0);
  const auto n = static_cast<std::size_t>(config_.num_ports);

  outputs_.reserve(n);
  for (std::size_t o = 0; o < n; ++o) {
    OutputPath out;
    out.dec_ttl = std::make_unique<DecIPTTL>("dec" + std::to_string(o),
                                             config_.costs);
    out.queue = std::make_unique<Queue>("q" + std::to_string(o), config_.costs,
                                        config_.queue_capacity);
    out.to = std::make_unique<ToDevice>("to" + std::to_string(o), config_.costs,
                                        out.queue.get());
    out.dec_ttl->connect(0, out.queue.get());
    for (Element* e : std::initializer_list<Element*>{out.dec_ttl.get(),
                                                      out.queue.get(),
                                                      out.to.get()}) {
      e->attach_cpu(&cpu_);
    }
    outputs_.push_back(std::move(out));
  }

  inputs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    InputPath in;
    in.from = std::make_unique<FromDevice>("from" + std::to_string(i),
                                           config_.costs);
    in.check = std::make_unique<CheckIPHeader>("chk" + std::to_string(i),
                                               config_.costs);
    in.lookup = std::make_unique<LookupIPRoute>("rt" + std::to_string(i),
                                                config_.costs, &table_);
    in.from->connect(0, in.check.get());
    in.check->connect(0, in.lookup.get());
    for (int o = 0; o < config_.num_ports; ++o) {
      in.lookup->connect(o, outputs_[static_cast<std::size_t>(o)].dec_ttl.get());
    }
    for (Element* e : std::initializer_list<Element*>{in.from.get(),
                                                      in.check.get(),
                                                      in.lookup.get()}) {
      e->attach_cpu(&cpu_);
    }
    inputs_.push_back(std::move(in));
  }
}

void ClickRouter::offer(int port, net::Packet p) {
  inputs_[static_cast<std::size_t>(port)].from->deposit(std::move(p));
}

bool ClickRouter::scheduler_pass() {
  // Click's task scheduler: round-robin over device tasks; each pass runs
  // one task (one packet's worth of work at that task).
  const std::size_t tasks = inputs_.size() + outputs_.size();
  for (std::size_t k = 0; k < tasks; ++k) {
    const std::size_t t = (rr_ + k) % tasks;
    bool did = false;
    if (t < inputs_.size()) {
      did = inputs_[t].from->run();
    } else {
      did = outputs_[t - inputs_.size()].to->run();
    }
    if (did) {
      rr_ = (t + 1) % tasks;
      return true;
    }
  }
  return false;
}

void ClickRouter::run(common::Cycle cpu_cycles) {
  const common::Cycle limit = cpu_.used() + cpu_cycles;
  while (cpu_.used() < limit) {
    if (!scheduler_pass()) break;
  }
}

double ClickRouter::run_traffic(net::TrafficGen& gen, std::uint64_t packets,
                                common::ByteCount fixed_bytes) {
  for (std::uint64_t i = 0; i < packets; ++i) {
    const int port = static_cast<int>(i % static_cast<std::uint64_t>(config_.num_ports));
    const net::PacketDesc d = gen.next(port);
    const common::ByteCount bytes =
        fixed_bytes > 0 ? fixed_bytes : std::max<common::ByteCount>(d.bytes, 20);
    offer(port, router::make_test_packet(uid_++, port, d.dst_port, bytes));
    // Keep queues bounded: interleave processing with arrivals.
    run(100000);
  }
  while (scheduler_pass()) {
  }
  return cpu_.seconds();
}

std::uint64_t ClickRouter::forwarded_packets() const {
  std::uint64_t n = 0;
  for (const auto& o : outputs_) n += o.to->sent_packets();
  return n;
}

common::ByteCount ClickRouter::forwarded_bytes() const {
  common::ByteCount n = 0;
  for (const auto& o : outputs_) n += o.to->sent_bytes();
  return n;
}

std::uint64_t ClickRouter::dropped_packets() const {
  std::uint64_t n = 0;
  for (const auto& i : inputs_) n += i.check->drops() + i.lookup->drops();
  for (const auto& o : outputs_) n += o.dec_ttl->drops() + o.queue->drops();
  return n;
}

double ClickRouter::mpps() const {
  const double secs = cpu_.seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(forwarded_packets()) / secs / 1e6;
}

double ClickRouter::gbps() const {
  const double secs = cpu_.seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(forwarded_bytes()) * 8.0 / secs / 1e9;
}

}  // namespace raw::click
