// Experiment E3 — Figure 7-2: mapping of router functional elements to Raw
// tile numbers, plus the compiled switch-program footprint per tile class.
#include <cstdio>
#include <cstring>

#include "common/metrics.h"
#include "router/schedule_compiler.h"

int main(int argc, char** argv) {
  using namespace raw::router;
  const char* metrics_json = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--metrics-json") && i + 1 < argc) {
      metrics_json = argv[++i];
    }
  }
  const Layout layout;
  const ScheduleCompiler compiler(layout);

  std::printf("Figure 7-2: mapping of router functional elements to Raw tiles\n\n");
  std::printf("grid (tile numbers are row-major on the 4x4 mesh):\n\n");

  const char* role[16] = {};
  char labels[16][24];
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles t = layout.port(p);
    std::snprintf(labels[t.ingress], sizeof labels[0], "In%d", p);
    std::snprintf(labels[t.lookup], sizeof labels[0], "Lookup%d", p);
    std::snprintf(labels[t.crossbar], sizeof labels[0], "Xbar%d", p);
    std::snprintf(labels[t.egress], sizeof labels[0], "Out%d", p);
    role[t.ingress] = labels[t.ingress];
    role[t.lookup] = labels[t.lookup];
    role[t.crossbar] = labels[t.crossbar];
    role[t.egress] = labels[t.egress];
  }
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int t = r * 4 + c;
      std::printf("  %2d:%-8s", t, role[t] != nullptr ? role[t] : "-");
    }
    std::printf("\n");
  }

  std::printf("\nper-port tile assignment:\n");
  std::printf("  port | ingress | lookup | crossbar | egress\n");
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles t = layout.port(p);
    std::printf("  %4d | %7d | %6d | %8d | %6d\n", p, t.ingress, t.lookup,
                t.crossbar, t.egress);
  }
  std::printf("\n(thesis Figure 7-3 confirms ingress tiles 4, 7, 8, 11; the\n"
              "crossbar ring runs clockwise through tiles 5 -> 6 -> 10 -> 9)\n");

  std::printf("\ncompiled switch-program sizes (of %zu-word switch imem):\n",
              raw::sim::kSwitchImemWords);
  const auto cb = compiler.compile_crossbar(0);
  const auto in = compiler.compile_ingress(0);
  const auto eg = compiler.compile_egress(0);
  std::printf("  crossbar: %4zu instructions (%zu code blocks)\n",
              cb.program->size(), cb.blocks.size());
  std::printf("  ingress : %4zu instructions\n", in.program->size());
  std::printf("  egress  : %4zu instructions\n", eg.program->size());

  if (metrics_json != nullptr) {
    raw::common::MetricRegistry reg;
    reg.counter("fig7_2/program_words/crossbar")
        .set(static_cast<std::uint64_t>(cb.program->size()));
    reg.counter("fig7_2/program_words/ingress")
        .set(static_cast<std::uint64_t>(in.program->size()));
    reg.counter("fig7_2/program_words/egress")
        .set(static_cast<std::uint64_t>(eg.program->size()));
    reg.counter("fig7_2/switch_imem_words")
        .set(static_cast<std::uint64_t>(raw::sim::kSwitchImemWords));
    std::FILE* f = std::fopen(metrics_json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_json);
      return 1;
    }
    const std::string json = reg.to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %zu metrics to %s\n", reg.size(), metrics_json);
  }
  return 0;
}
