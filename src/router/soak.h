// Endurance soak driver: multi-billion-cycle runs as a deterministic
// sequence of epochs, each a fresh router under a rotating chaos mix and
// traffic profile with the invariant monitor armed.
//
// Why epochs: tile programs are C++20 coroutines, whose frames cannot be
// serialized, so a mid-run warm-start checkpoint of the full simulator is
// not feasible (see DESIGN.md "Endurance & invariants"). Instead the soak is
// structured so that every epoch boundary *is* a warm-startable checkpoint
// (a fresh router with an epoch-derived seed), and within an epoch the
// checkpoint ring provides digest anchors: a failure bundle pins the failing
// epoch and replays it alone — from zero, or anchored at the nearest
// checkpoint — reproducing the identical state-digest trajectory under
// either engine and any worker count. Replay cost is one epoch, not the
// whole soak.
//
// The memory-flatness sentinel (common::MemTrend over /proc RSS) is shared
// across epochs and registered as a *non-deterministic* check: it reports
// leaks but never anchors a replay bundle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "router/repro.h"

namespace raw::router {

struct SoakSpec {
  std::uint64_t seed = 1;
  /// Target chip cycles across the whole soak (the driver rounds up to
  /// whole epochs; drains add more on top).
  common::Cycle total_cycles = 1'000'000'000;
  common::Cycle epoch_cycles = 4'000'000;
  /// Per-epoch drain budget.
  common::Cycle drain_cycles = 2'000'000;
  int faults_per_kind = 6;
  int threads = 0;
  bool reliable_links = true;
  bool recovery = true;
  bool force_dense = false;
  /// Endurance knobs forwarded to RouterConfig::endurance per epoch.
  common::Cycle invariant_cadence = 16384;
  common::Cycle checkpoint_interval = 1u << 19;
  std::size_t checkpoint_ring = 4;
  common::Cycle checkpoint_grace = 4096;
  /// Memory-flatness slack: recent-window mean RSS may exceed the first
  /// window's by this many bytes plus this fraction.
  std::uint64_t mem_slack_bytes = 64ull << 20;
  double mem_slack_fraction = 0.10;
  /// Soak self-test: soak-absolute cycle at which an always-failing check
  /// arms inside the owning epoch (0 = off). Proves the violation ->
  /// bundle -> anchored-replay path end to end.
  common::Cycle inject_invariant_failure_at = 0;
  /// Artifact directories ("" = don't write): failure repro bundles, flight
  /// recorder dumps, spilled checkpoint snapshots.
  std::string bundle_dir;
  std::string flight_dir;
  std::string checkpoint_dir;
  /// Wall-clock budget in seconds (0 = none): the soak stops at the next
  /// epoch boundary once exceeded and reports time_boxed. CI's tier-3
  /// nightly uses this to stay inside its slot.
  double time_box_seconds = 0.0;
  /// On a failure with a deterministic invariant violation, immediately
  /// verify the bundle: anchored replay and from-zero replay must agree
  /// with each other and with the recorded digests.
  bool verify_failure_replay = true;
};

/// Per-epoch record kept in the report.
struct SoakEpochResult {
  std::int64_t epoch = 0;
  std::string mix;
  std::string traffic_profile;
  ChaosResult chaos;
};

/// Result of replaying a failure bundle from its nearest checkpoint anchor
/// (and, when driven by run_soak / rawchaos, comparing against from-zero).
struct AnchoredReplayResult {
  bool attempted = false;
  bool ok = false;
  std::string detail;  // why it failed; "" when ok
  common::Cycle anchor_cycle = 0;
  std::uint64_t anchored_digest = 0;
  std::uint64_t from_zero_digest = 0;
};

struct SoakReport {
  bool pass = false;
  std::string failure;  // "" on pass
  std::uint64_t seed = 0;
  std::int64_t epochs_run = 0;
  common::Cycle total_cycles = 0;  // target
  common::Cycle cycles_run = 0;    // chip cycles actually simulated
  bool time_boxed = false;
  double wall_seconds = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t invariant_sweeps = 0;
  std::uint64_t checkpoints_captured = 0;
  std::uint64_t checkpoints_skipped = 0;
  std::uint64_t link_retransmits = 0;
  std::uint64_t recoveries = 0;  // epochs that ended degraded
  std::uint64_t rss_first = 0;
  std::uint64_t rss_last = 0;
  std::uint64_t rss_peak = 0;
  bool mem_flat = true;
  std::string bundle_path;  // failure artifacts actually written
  std::string flight_path;
  AnchoredReplayResult replay;
  std::vector<SoakEpochResult> epochs;

  /// Serializes as a self-contained "soak/v1" JSON document.
  [[nodiscard]] std::string to_json() const;
};

/// The deterministic per-epoch chaos spec: epoch-derived seed, the rotation
/// table's (mix, traffic profile, load), endurance armed, and the injected
/// failure translated to an epoch-relative cycle when it lands here.
/// Exposed for tests; run_soak calls it per epoch.
[[nodiscard]] ChaosSpec epoch_spec(const SoakSpec& spec, std::int64_t epoch);

/// Runs the soak. Deterministic modulo wall-clock effects (the time box and
/// the RSS sentinel); everything the pass/fail verdict and any bundle rests
/// on is seed-derived.
SoakReport run_soak(const SoakSpec& spec);

/// Replays `bundle` anchored at the nearest checkpoint at or before its
/// failure cycle: reconstructs the identical router, runs to the anchor,
/// verifies the chip and router digests there, continues to the failure,
/// and verifies the violation cycle, the final state digest, and the
/// regenerated checkpoint anchors all match the bundle. Does not run the
/// from-zero leg — callers compare against run_chaos_events themselves.
AnchoredReplayResult replay_from_checkpoint(const ChaosRepro& bundle);

/// Anchored replay + from-zero replay, cross-checked (the acceptance gate:
/// both legs must reproduce the bundle's digest and failure cycle).
AnchoredReplayResult verify_bundle_replay(const ChaosRepro& bundle);

}  // namespace raw::router
