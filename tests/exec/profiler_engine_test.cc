// Engine-level profiler guarantees: attaching a profiler never changes what
// the simulation computes (state digests identical to an unprofiled serial
// run at every worker count), and the flight recorder actually captures the
// stall-marked snapshot a watchdog StallReport forces.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/profiler.h"
#include "router/chaos.h"
#include "router/raw_router.h"

namespace raw::router {
namespace {

net::TrafficConfig uniform_traffic() {
  net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = net::DestPattern::kUniform;
  t.size = net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  t.load = 0.9;
  return t;
}

std::uint64_t run_digest(int threads, bool profiled) {
  RouterConfig cfg;
  cfg.threads = threads;
  RawRouter router(cfg, net::RouteTable::simple4(), uniform_traffic(), 7);
  common::Profiler prof(threads);
  if (profiled) {
    prof.enable_flight(/*capacity=*/16, /*interval=*/1000);
    router.set_profiler(&prof);
    prof.start();
  }
  router.run(12000);
  EXPECT_TRUE(router.drain(300000));
  if (profiled) {
    prof.stop();
    // The profiler really ran: it attributed time and snapped periodically.
    EXPECT_GT(prof.phase_ns_sum(), 0u);
    EXPECT_GT(prof.flight_recorded(), 0u);
  }
  return router.state_digest();
}

TEST(ProfilerEngineTest, DigestUnchangedByProfilingAcrossWorkerCounts) {
  const std::uint64_t baseline = run_digest(/*threads=*/1, /*profiled=*/false);
  for (const int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(run_digest(threads, /*profiled=*/true), baseline)
        << "threads=" << threads;
  }
}

TEST(ProfilerEngineTest, StallReportForcesMarkedFlightSnapshot) {
  // A permanent tile freeze without recovery wedges the fabric: the watchdog
  // raises a StallReport and the router must force a stall-marked snapshot.
  ChaosSpec spec;
  spec.seed = 3;
  spec.mix.permanent_freeze = true;
  spec.run_cycles = 20000;
  common::Profiler prof;
  prof.enable_flight(/*capacity=*/32, /*interval=*/500);
  spec.profiler = &prof;

  const ChaosResult r = run_chaos(spec);
  EXPECT_TRUE(r.pass) << r.failure;
  EXPECT_FALSE(r.stall_summary.empty());

  bool saw_stall_snap = false;
  for (const auto& s : prof.flight()) saw_stall_snap |= s.on_stall;
  EXPECT_TRUE(saw_stall_snap);
  // The harness bracketed the run, so coverage is meaningful (not zero).
  EXPECT_GT(prof.wall_ns(), 0u);
  EXPECT_GT(prof.coverage(), 0.0);
}

TEST(ProfilerEngineTest, MultiThreadedRunAttributesBarrierWaits) {
  RouterConfig cfg;
  cfg.threads = 4;
  RawRouter router(cfg, net::RouteTable::simple4(), uniform_traffic(), 11);
  common::Profiler prof(4);
  router.set_profiler(&prof);
  prof.start();
  router.run(8000);
  prof.stop();
  ASSERT_EQ(router.threads(), 4);
  // Every worker crossed barriers and logged the wait.
  for (int w = 0; w < 4; ++w) {
    EXPECT_GT(prof.worker(w).barrier_wait_ns.count(), 0u) << "worker " << w;
  }
  EXPECT_GT(prof.phase_total(common::ProfPhase::kBarrierWait).ns, 0u);
  EXPECT_GT(prof.phase_total(common::ProfPhase::kCompute).ns, 0u);
}

}  // namespace
}  // namespace raw::router
