#include "fabric/cell_switch.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace raw::fabric {
namespace {

std::unique_ptr<CellSwitch> make_voq_islip(int ports = 4) {
  CellSwitchConfig cfg;
  cfg.ports = ports;
  cfg.queueing = QueueingMode::kVoq;
  return std::make_unique<CellSwitch>(cfg,
                                      std::make_unique<IslipScheduler>(ports));
}

std::vector<std::optional<ArrivingPacket>> no_arrivals(int ports) {
  return std::vector<std::optional<ArrivingPacket>>(
      static_cast<std::size_t>(ports));
}

TEST(CellSwitchTest, SingleCellCrossesInOneSlot) {
  auto sw = make_voq_islip();
  auto arrivals = no_arrivals(4);
  arrivals[0] = ArrivingPacket{2, 1};
  sw->step(arrivals);
  EXPECT_EQ(sw->delivered_cells(), 1u);
  EXPECT_EQ(sw->delivered_at_output(2), 1u);
  EXPECT_EQ(sw->delay().mean(), 0.0);
}

TEST(CellSwitchTest, CellConservation) {
  auto sw = make_voq_islip();
  common::Rng rng(1);
  sw->run_uniform(5000, 0.8, rng);
  // Drain.
  auto arrivals = no_arrivals(4);
  for (int s = 0; s < 5000; ++s) sw->step(arrivals);
  EXPECT_EQ(sw->offered_cells(),
            sw->delivered_cells() + sw->dropped_cells());
  EXPECT_EQ(sw->dropped_cells(), 0u);
  std::uint64_t outs = 0;
  for (int o = 0; o < 4; ++o) outs += sw->delivered_at_output(o);
  EXPECT_EQ(outs, sw->delivered_cells());
}

TEST(CellSwitchTest, VoqIslipNearFullThroughputAtSaturation) {
  auto sw = make_voq_islip();
  common::Rng rng(2);
  sw->run_uniform(20000, 1.0, rng);
  EXPECT_GT(sw->throughput(), 0.95);
}

TEST(CellSwitchTest, FifoHolThroughputCeiling) {
  CellSwitchConfig cfg;
  cfg.ports = 16;  // the 58.6% asymptote needs N reasonably large
  cfg.queueing = QueueingMode::kFifo;
  CellSwitch sw(cfg, std::make_unique<FifoHolScheduler>(cfg.ports));
  common::Rng rng(3);
  sw.run_uniform(20000, 1.0, rng);
  EXPECT_LT(sw.throughput(), 0.66);
  EXPECT_GT(sw.throughput(), 0.50);
}

TEST(CellSwitchTest, OutputQueuedIdealIsFullThroughput) {
  CellSwitchConfig cfg;
  cfg.ports = 4;
  cfg.output_queued_ideal = true;
  CellSwitch sw(cfg, nullptr);
  common::Rng rng(4);
  sw.run_uniform(20000, 1.0, rng);
  EXPECT_GT(sw.throughput(), 0.97);
}

TEST(CellSwitchTest, LightLoadDelaysSmall) {
  auto sw = make_voq_islip();
  common::Rng rng(5);
  sw->run_uniform(20000, 0.1, rng);
  EXPECT_LT(sw->delay().mean(), 1.0);
}

TEST(CellSwitchTest, VariableLengthHoldsConnection) {
  auto sw = make_voq_islip();
  auto arrivals = no_arrivals(4);
  arrivals[0] = ArrivingPacket{1, 3};  // 3-cell packet
  sw->step(arrivals);
  EXPECT_EQ(sw->delivered_cells(), 1u);
  EXPECT_EQ(sw->delivered_packets(), 0u);
  // While held, a competing single-cell packet to the same output must wait.
  arrivals = no_arrivals(4);
  arrivals[2] = ArrivingPacket{1, 1};
  sw->step(arrivals);
  EXPECT_EQ(sw->delivered_cells(), 2u);   // second cell of the worm only
  EXPECT_EQ(sw->delivered_at_output(1), 2u);
  sw->step(no_arrivals(4));  // tail cell
  EXPECT_EQ(sw->delivered_packets(), 1u);
  sw->step(no_arrivals(4));  // now the competing cell goes
  EXPECT_EQ(sw->delivered_packets(), 2u);
}

TEST(CellSwitchTest, DropsWhenQueueFull) {
  CellSwitchConfig cfg;
  cfg.ports = 2;
  cfg.queue_capacity_cells = 2;
  CellSwitch sw(cfg, std::make_unique<IslipScheduler>(2));
  auto arrivals = no_arrivals(2);
  // Two inputs both flood output 0; input backlog grows past capacity.
  for (int s = 0; s < 10; ++s) {
    arrivals[0] = ArrivingPacket{0, 1};
    arrivals[1] = ArrivingPacket{0, 1};
    sw.step(arrivals);
  }
  EXPECT_GT(sw.dropped_cells(), 0u);
  EXPECT_LE(sw.backlog(0), 2u);
  EXPECT_LE(sw.backlog(1), 2u);
}

TEST(CellSwitchTest, PermutationTrafficIsConflictFree) {
  auto sw = make_voq_islip();
  auto arrivals = no_arrivals(4);
  for (int s = 0; s < 1000; ++s) {
    for (int i = 0; i < 4; ++i) arrivals[static_cast<std::size_t>(i)] =
        ArrivingPacket{(i + 1) % 4, 1};
    sw->step(arrivals);
  }
  EXPECT_GT(sw->throughput(), 0.99);
  EXPECT_LT(sw->delay().max(), 3.0);
}

TEST(CellSwitchTest, DeterministicAcrossRuns) {
  auto run = []() {
    auto sw = make_voq_islip();
    common::Rng rng(42);
    sw->run_uniform(3000, 0.9, rng);
    return std::make_pair(sw->delivered_cells(), sw->delay().mean());
  };
  EXPECT_EQ(run(), run());
}

TEST(CellSwitchTest, InputFairnessUnderUniformSaturation) {
  auto sw = make_voq_islip();
  common::Rng rng(6);
  sw->run_uniform(20000, 1.0, rng);
  double per_input[4];
  for (int i = 0; i < 4; ++i) {
    per_input[i] = static_cast<double>(sw->delivered_from_input(i));
  }
  EXPECT_GT(common::jain_fairness(per_input, 4), 0.99);
}

}  // namespace
}  // namespace raw::fabric
