#include "common/ring_buffer.h"

#include <gtest/gtest.h>

namespace raw::common {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.free_space(), 4u);
}

TEST(RingBufferTest, PushPopFifoOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, WrapsAroundManyTimes) {
  RingBuffer<int> rb(2);
  for (int i = 0; i < 1000; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.front(), i);
    EXPECT_EQ(rb.pop(), i);
  }
}

TEST(RingBufferTest, PeekDoesNotConsume) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.peek(0), 10);
  EXPECT_EQ(rb.peek(1), 20);
  EXPECT_EQ(rb.peek(2), 30);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.pop(), 10);
  EXPECT_EQ(rb.peek(0), 20);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(7);
  EXPECT_EQ(rb.pop(), 7);
}

TEST(RingBufferDeathTest, PushFullAborts) {
  RingBuffer<int> rb(1);
  rb.push(1);
  EXPECT_DEATH(rb.push(2), "full ring buffer");
}

TEST(RingBufferDeathTest, PopEmptyAborts) {
  RingBuffer<int> rb(1);
  EXPECT_DEATH((void)rb.pop(), "empty ring buffer");
}

}  // namespace
}  // namespace raw::common
