#include "net/cell.h"

#include <gtest/gtest.h>

namespace raw::net {
namespace {

TEST(SegmentTest, SinglePacketSingleCell) {
  const auto cells = segment(1, 0, 2, 60, 64);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].last);
  EXPECT_EQ(cells[0].bytes, 60u);
  EXPECT_EQ(cells[0].seq, 0);
}

TEST(SegmentTest, ExactMultiple) {
  const auto cells = segment(2, 1, 3, 128, 64);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].bytes, 64u);
  EXPECT_FALSE(cells[0].last);
  EXPECT_EQ(cells[1].bytes, 64u);
  EXPECT_TRUE(cells[1].last);
}

TEST(SegmentTest, TailCellPartial) {
  const auto cells = segment(3, 0, 1, 150, 64);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[2].bytes, 22u);
  EXPECT_TRUE(cells[2].last);
  for (std::uint16_t i = 0; i < 3; ++i) EXPECT_EQ(cells[i].seq, i);
}

TEST(SegmentTest, MetadataPropagates) {
  const auto cells = segment(77, 2, 3, 100, 48);
  for (const Cell& c : cells) {
    EXPECT_EQ(c.packet_uid, 77u);
    EXPECT_EQ(c.src_port, 2);
    EXPECT_EQ(c.dst_port, 3);
  }
}

TEST(ReassemblerTest, CompletesOnTail) {
  Reassembler r;
  const auto cells = segment(5, 1, 2, 200, 64);
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    EXPECT_FALSE(r.add(cells[i]).has_value());
  }
  const auto done = r.add(cells.back());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->packet_uid, 5u);
  EXPECT_EQ(done->bytes, 200u);
  EXPECT_EQ(done->cells, cells.size());
  EXPECT_EQ(r.open_flows(), 0u);
}

TEST(ReassemblerTest, InterleavedPacketsFromDifferentSources) {
  Reassembler r;
  const auto a = segment(1, 0, 3, 128, 64);
  const auto b = segment(2, 1, 3, 128, 64);
  EXPECT_FALSE(r.add(a[0]).has_value());
  EXPECT_FALSE(r.add(b[0]).has_value());
  EXPECT_EQ(r.open_flows(), 2u);
  ASSERT_TRUE(r.add(a[1]).has_value());
  ASSERT_TRUE(r.add(b[1]).has_value());
}

TEST(ReassemblerTest, SameUidDifferentSourcesAreDistinct) {
  Reassembler r;
  const auto a = segment(9, 0, 3, 128, 64);
  const auto b = segment(9, 1, 3, 128, 64);
  EXPECT_FALSE(r.add(a[0]).has_value());
  EXPECT_FALSE(r.add(b[0]).has_value());
  const auto done_a = r.add(a[1]);
  ASSERT_TRUE(done_a.has_value());
  EXPECT_EQ(done_a->src_port, 0);
}

TEST(ReassemblerDeathTest, OutOfOrderCellAborts) {
  Reassembler r;
  const auto cells = segment(5, 1, 2, 200, 64);
  EXPECT_DEATH((void)r.add(cells[1]), "out of sequence");
}

TEST(SegmentPropertyTest, ByteConservationAcrossSizes) {
  for (common::ByteCount packet = 1; packet <= 300; packet += 7) {
    for (common::ByteCount cell : {16u, 53u, 64u}) {
      const auto cells = segment(packet, 0, 1, packet, cell);
      common::ByteCount total = 0;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        total += cells[i].bytes;
        EXPECT_LE(cells[i].bytes, cell);
        if (i + 1 < cells.size()) {
          EXPECT_EQ(cells[i].bytes, cell);
        }
      }
      EXPECT_EQ(total, packet);
      EXPECT_TRUE(cells.back().last);
    }
  }
}

}  // namespace
}  // namespace raw::net
