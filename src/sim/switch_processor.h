// Execution model of a tile's static switch processor.
//
// The switch fetches one instruction per cycle. An instruction fires only if
// every route source has a word available and every route destination has
// FIFO space; otherwise the switch stalls with no side effects. When it
// fires, each distinct (network, source) is read exactly once and fanned out
// to all of its destinations (the crossbar can multicast), and the control
// component executes in the same cycle.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "common/types.h"
#include "sim/channel.h"
#include "sim/switch_isa.h"

namespace raw::sim {

/// What a processor (tile or switch) did during a cycle, for tracing.
enum class AgentState : std::uint8_t {
  kBusy = 0,         // advanced (computed or moved data)
  kBlockedRecv = 1,  // stalled waiting for an incoming word
  kBlockedSend = 2,  // stalled on a full outgoing FIFO
  kBlockedMem = 3,   // stalled on a (modelled) cache miss
  kIdle = 4,         // halted or unprogrammed
};

class SwitchProcessor {
 public:
  /// Channel endpoints seen by this switch. `in` channels are the ones the
  /// switch reads (from neighbouring tiles' switches, edge I/O ports, or the
  /// tile processor's $csto); `out` channels are the ones it writes. Entries
  /// may be null where no link exists (an unconnected chip edge): routing to
  /// or from a null port is a hard error caught at run time.
  struct Ports {
    std::array<std::array<Channel*, 5>, kNumStaticNets> in{};
    std::array<std::array<Channel*, 5>, kNumStaticNets> out{};

    [[nodiscard]] Channel* input(std::uint8_t net, Dir d) const {
      return in[net][static_cast<std::size_t>(d)];
    }
    [[nodiscard]] Channel* output(std::uint8_t net, Dir d) const {
      return out[net][static_cast<std::size_t>(d)];
    }
  };

  void connect(Ports ports) { ports_ = ports; }
  [[nodiscard]] const Ports& ports() const { return ports_; }

  /// Loads a program and resets the PC. The program is shared because the
  /// four crossbar tiles of a port-symmetric router run rotated copies built
  /// from the same schedule.
  void load(std::shared_ptr<const SwitchProgram> program);
  [[nodiscard]] bool loaded() const { return program_ != nullptr; }

  void reset();

  /// Advances one cycle; returns what the switch did.
  AgentState step();

  [[nodiscard]] std::size_t pc() const { return pc_; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] common::Word reg(std::uint8_t r) const { return regs_[r]; }
  void set_reg(std::uint8_t r, common::Word v) { regs_[r] = v; }

  /// Snapshot restore (Chip::restore): overwrites the architectural state —
  /// PC, halt flag, registers — leaving the cumulative cycle counters alone.
  void restore_state(std::size_t pc, bool halted,
                     const std::array<common::Word, kNumSwitchRegs>& regs) {
    pc_ = pc;
    halted_ = halted;
    regs_ = regs;
    last_state_ = AgentState::kIdle;
    last_block_channel_ = nullptr;
  }

  /// What the last step() returned, and — when it blocked — the channel it
  /// blocked on. Consumed by the progress watchdog to explain stalls.
  [[nodiscard]] AgentState last_state() const { return last_state_; }
  [[nodiscard]] const Channel* last_block_channel() const {
    return last_block_channel_;
  }

  /// Sparse-engine catch-up: credits `n` cycles spent parked in `cause`
  /// (blocked-recv, blocked-send, or idle) without being stepped, so the
  /// per-cause counters match an engine that steps every cycle.
  void credit_parked(AgentState cause, std::uint64_t n) {
    switch (cause) {
      case AgentState::kBlockedRecv: blocked_recv_ += n; break;
      case AgentState::kBlockedSend: blocked_send_ += n; break;
      case AgentState::kIdle: idle_ += n; break;
      default: break;
    }
  }

  /// Cycle accounting since the last reset(), split by block cause.
  [[nodiscard]] std::uint64_t cycles_busy() const { return busy_; }
  [[nodiscard]] std::uint64_t cycles_blocked() const {
    return blocked_recv_ + blocked_send_;
  }
  [[nodiscard]] std::uint64_t cycles_blocked_recv() const { return blocked_recv_; }
  [[nodiscard]] std::uint64_t cycles_blocked_send() const { return blocked_send_; }
  [[nodiscard]] std::uint64_t cycles_idle() const { return idle_; }

 private:
  Ports ports_{};
  std::shared_ptr<const SwitchProgram> program_;
  std::size_t pc_ = 0;
  bool halted_ = false;
  std::array<common::Word, kNumSwitchRegs> regs_{};
  std::uint64_t busy_ = 0;
  std::uint64_t blocked_recv_ = 0;
  std::uint64_t blocked_send_ = 0;
  std::uint64_t idle_ = 0;
  AgentState last_state_ = AgentState::kIdle;
  const Channel* last_block_channel_ = nullptr;
};

}  // namespace raw::sim
