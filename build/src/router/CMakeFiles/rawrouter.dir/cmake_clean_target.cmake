file(REMOVE_RECURSE
  "librawrouter.a"
)
