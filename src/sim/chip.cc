#include "sim/chip.h"

#include "common/assert.h"
#include "sim/fault_plan.h"

namespace raw::sim {

Chip::Chip(ChipConfig config) : config_(config) {
  const GridShape shape = config_.shape;
  const auto n = static_cast<std::size_t>(shape.num_tiles());

  tiles_.reserve(n);
  for (int t = 0; t < shape.num_tiles(); ++t) {
    tiles_.push_back(std::make_unique<Tile>(t, shape.coord(t)));
  }

  for (int net = 0; net < kNumStaticNets; ++net) {
    auto& links = static_links_[static_cast<std::size_t>(net)];
    auto& edges = edge_in_[static_cast<std::size_t>(net)];
    links.resize(n);
    edges.resize(n);
    for (int t = 0; t < shape.num_tiles(); ++t) {
      const TileCoord c = shape.coord(t);
      for (const Dir d : kMeshDirs) {
        const auto di = static_cast<std::size_t>(d);
        const std::string base =
            "net" + std::to_string(net + 1) + "." + tile_name(t) + "." + dir_name(d);
        links[static_cast<std::size_t>(t)][di] =
            std::make_unique<Channel>(base + ".out", config_.link_fifo_depth);
        if (!shape.contains(GridShape::neighbor(c, d))) {
          edges[static_cast<std::size_t>(t)][di] =
              std::make_unique<Channel>(base + ".in", config_.link_fifo_depth);
        }
      }
    }
  }

  // Wire every switch processor's port map.
  for (int t = 0; t < shape.num_tiles(); ++t) {
    SwitchProcessor::Ports ports;
    for (int net = 0; net < kNumStaticNets; ++net) {
      const auto ni = static_cast<std::size_t>(net);
      for (const Dir d : kMeshDirs) {
        const auto di = static_cast<std::size_t>(d);
        ports.out[ni][di] = out_link(net, t, d);
        ports.in[ni][di] = in_link(net, t, d);
      }
      const auto pi = static_cast<std::size_t>(Dir::kProc);
      ports.in[ni][pi] = &tile(t).csto(net);
      ports.out[ni][pi] = &tile(t).csti(net);
    }
    tile(t).switch_proc().connect(ports);
  }

  if (config_.with_dynamic_network) {
    dyn_ = std::make_unique<DynamicNetwork>(shape);
  }

  // Cache the full channel list for the cycle engine.
  for (int net = 0; net < kNumStaticNets; ++net) {
    for (std::size_t t = 0; t < n; ++t) {
      for (std::size_t d = 0; d < 4; ++d) {
        if (auto& ch = static_links_[static_cast<std::size_t>(net)][t][d]) {
          all_channels_.push_back(ch.get());
        }
        if (auto& ch = edge_in_[static_cast<std::size_t>(net)][t][d]) {
          all_channels_.push_back(ch.get());
        }
      }
    }
  }
  for (auto& t : tiles_) {
    for (int net = 0; net < kNumStaticNets; ++net) {
      all_channels_.push_back(&t->csto(net));
      all_channels_.push_back(&t->csti(net));
    }
  }
  if (dyn_ != nullptr) {
    for (Channel* ch : dyn_->all_channels()) all_channels_.push_back(ch);
  }
}

Channel* Chip::out_link(int net, int tile_idx, Dir dir) const {
  return static_links_[static_cast<std::size_t>(net)]
                      [static_cast<std::size_t>(tile_idx)]
                      [static_cast<std::size_t>(dir)]
                          .get();
}

Channel* Chip::in_link(int net, int tile_idx, Dir dir) const {
  const GridShape shape = config_.shape;
  const TileCoord neighbor = GridShape::neighbor(shape.coord(tile_idx), dir);
  if (shape.contains(neighbor)) {
    return out_link(net, shape.index(neighbor), opposite(dir));
  }
  return edge_in_[static_cast<std::size_t>(net)]
                 [static_cast<std::size_t>(tile_idx)]
                 [static_cast<std::size_t>(dir)]
                     .get();
}

IoPort Chip::io_port(int net, int tile_idx, Dir dir) const {
  const GridShape shape = config_.shape;
  RAW_ASSERT_MSG(!shape.contains(GridShape::neighbor(shape.coord(tile_idx), dir)),
                 "io_port requested for an interior link");
  IoPort port;
  port.to_chip = edge_in_[static_cast<std::size_t>(net)]
                         [static_cast<std::size_t>(tile_idx)]
                         [static_cast<std::size_t>(dir)]
                             .get();
  port.from_chip = out_link(net, tile_idx, dir);
  return port;
}

void Chip::add_device(Device* device) {
  RAW_ASSERT(device != nullptr);
  devices_.push_back(device);
}

void Chip::set_fault_plan(FaultPlan* plan) {
  faults_ = plan;
  if (faults_ != nullptr) faults_->bind(*this);
}

Channel* Chip::find_channel(const std::string& name) const {
  for (Channel* ch : all_channels_) {
    if (ch->name() == name) return ch;
  }
  return nullptr;
}

void Chip::step() {
  for (Channel* ch : all_channels_) ch->begin_cycle();

  FaultPlan* const faults = faults_;
  if (faults != nullptr) faults->step(*this);

  for (Device* d : devices_) d->step(*this);

  if (faults == nullptr && !trace_.active(cycle_)) {
    // Hot path: no fault plan attached and no utilization window open, so
    // the per-tile frozen test and trace bookkeeping vanish entirely.
    for (auto& t : tiles_) {
      (void)t->step_switch();
      (void)t->step_proc();
    }
  } else {
    const bool tracing = trace_.active(cycle_);
    const int n = num_tiles();
    for (int t = 0; t < n; ++t) {
      if (faults != nullptr && faults->tile_frozen(t)) {
        // A frozen tile executes nothing this cycle; its FIFOs keep their
        // contents and neighbours simply see no words move.
        if (tracing) trace_.record(cycle_, t, AgentState::kIdle, AgentState::kIdle);
        continue;
      }
      const AgentState sw = tile(t).step_switch();
      const AgentState proc = tile(t).step_proc();
      if (tracing) trace_.record(cycle_, t, proc, sw);
    }
  }

  // dyn_ is null when ChipConfig::with_dynamic_network is false: the whole
  // dynamic-network step (and its channels' begin/end, which never enter
  // all_channels_) costs nothing in that configuration.
  if (dyn_ != nullptr) dyn_->step();

  bool progress = false;
  for (Channel* ch : all_channels_) progress |= ch->end_cycle();
  finish_cycle(progress);
}

void Chip::run(common::Cycle cycles) {
  for (common::Cycle i = 0; i < cycles; ++i) step();
}

void Chip::enable_channel_stats(bool on) {
  for (Channel* ch : all_channels_) ch->set_stats_enabled(on);
}

void Chip::export_metrics(common::MetricRegistry& registry,
                          const std::string& prefix) const {
  registry.counter(prefix + "/cycles").set(cycle_);
  registry.counter(prefix + "/static_words_transferred")
      .set(static_words_transferred());

  for (int t = 0; t < num_tiles(); ++t) {
    const Tile& tl = tile(t);
    const std::string base = prefix + "/tile" + std::to_string(t);
    registry.counter(base + "/proc/busy_cycles").set(tl.proc_cycles_busy());
    registry.counter(base + "/proc/blocked_cycles").set(tl.proc_cycles_blocked());
    const SwitchProcessor& sw = tl.switch_proc();
    registry.counter(base + "/switch/busy_cycles").set(sw.cycles_busy());
    registry.counter(base + "/switch/blocked_recv_cycles")
        .set(sw.cycles_blocked_recv());
    registry.counter(base + "/switch/blocked_send_cycles")
        .set(sw.cycles_blocked_send());
    registry.counter(base + "/switch/idle_cycles").set(sw.cycles_idle());
  }

  for (const Channel* ch : all_channels_) {
    if (ch->words_transferred() == 0 && ch->stats_cycles() == 0) continue;
    if (ch->name().empty()) continue;
    const std::string base = prefix + "/channel/" + ch->name();
    registry.counter(base + "/words").set(ch->words_transferred());
    if (ch->stats_cycles() > 0) {
      registry.gauge(base + "/mean_occupancy")
          .set(static_cast<double>(ch->occupancy_sum()) /
               static_cast<double>(ch->stats_cycles()));
      registry.counter(base + "/backpressure_cycles").set(ch->full_cycles());
    }
  }
}

std::uint64_t Chip::static_words_transferred() const {
  std::uint64_t total = 0;
  for (int net = 0; net < kNumStaticNets; ++net) {
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      for (std::size_t d = 0; d < 4; ++d) {
        if (const auto& ch = static_links_[static_cast<std::size_t>(net)][t][d]) {
          total += ch->words_transferred();
        }
      }
    }
  }
  return total;
}

}  // namespace raw::sim
