#include "router/repro.h"

#include <cstdio>
#include <cstdlib>

#include "common/assert.h"

namespace raw::router {
namespace {

// ---------------------------------------------------------------------------
// JSON writing. The schema is small and fixed, so the writer is a handful of
// append helpers (sequential appends — see config_space.cc on -Wrestrict).

void append_escaped(std::string& s, const std::string& v) {
  s += '"';
  for (const char c : v) {
    switch (c) {
      case '"': s += "\\\""; break;
      case '\\': s += "\\\\"; break;
      case '\n': s += "\\n"; break;
      case '\t': s += "\\t"; break;
      case '\r': s += "\\r"; break;
      default: s += c; break;
    }
  }
  s += '"';
}

void append_double(std::string& s, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  s += buf;
}

void append_hex64(std::string& s, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  s += '"';
  s += buf;
  s += '"';
}

// ---------------------------------------------------------------------------
// JSON reading: a minimal recursive-descent parser covering exactly what
// to_json emits (objects, arrays, strings with the escapes above, numbers,
// booleans). Unknown keys are skipped so the schema can grow.

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(i);
    return false;
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r' || s[i] == ',')) {
      ++i;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char e = s[i++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: c = e; break;  // \" \\ and anything else literal
        }
      }
      *out += c;
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || (s[i] >= '0' && s[i] <= '9'))) {
      ++i;
    }
    if (i == start) return fail("expected number");
    *out = std::strtod(s.c_str() + start, nullptr);
    return true;
  }

  /// Exact unsigned-64 parse: a plain digit run goes through strtoull so
  /// full-width values (splitmix64 soak seeds) keep their low bits — a
  /// double's 53-bit mantissa silently rounds them, which breaks replay.
  bool parse_u64(std::uint64_t* out) {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || (s[i] >= '0' && s[i] <= '9'))) {
      ++i;
    }
    if (i == start) return fail("expected number");
    const std::string tok = s.substr(start, i - start);
    if (tok.find_first_not_of("0123456789") == std::string::npos) {
      *out = std::strtoull(tok.c_str(), nullptr, 10);
    } else {
      *out = static_cast<std::uint64_t>(std::strtod(tok.c_str(), nullptr));
    }
    return true;
  }

  bool parse_bool(bool* out) {
    skip_ws();
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      *out = true;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      *out = false;
      return true;
    }
    return fail("expected boolean");
  }

  bool skip_value() {
    skip_ws();
    if (i >= s.size()) return fail("expected value");
    if (s[i] == '"') {
      std::string dummy;
      return parse_string(&dummy);
    }
    if (s[i] == '{' || s[i] == '[') {
      const char open = s[i];
      const char close = open == '{' ? '}' : ']';
      ++i;
      int depth = 1;
      while (i < s.size() && depth > 0) {
        if (s[i] == '"') {
          std::string dummy;
          if (!parse_string(&dummy)) return false;
          continue;
        }
        if (s[i] == open) ++depth;
        if (s[i] == close) --depth;
        ++i;
      }
      return depth == 0 || fail("unterminated container");
    }
    if (s.compare(i, 4, "true") == 0 || s.compare(i, 5, "false") == 0) {
      bool dummy = false;
      return parse_bool(&dummy);
    }
    double dummy = 0;
    return parse_number(&dummy);
  }

  /// Iterates `{ "key": value, ... }`, calling `on_field(key)` with the
  /// cursor positioned at the value. on_field must consume the value.
  template <typename F>
  bool parse_object(F&& on_field) {
    if (!consume('{')) return false;
    while (!peek('}')) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (!consume(':')) return false;
      if (!on_field(key)) return false;
    }
    return consume('}');
  }
};

bool outcome_from_name(const std::string& name, DrainOutcome* out) {
  for (const DrainOutcome o :
       {DrainOutcome::kDrained, DrainOutcome::kLossQuiesced,
        DrainOutcome::kStalled, DrainOutcome::kTimeout,
        DrainOutcome::kDrainedDegraded, DrainOutcome::kInvariantViolation}) {
    if (name == drain_outcome_name(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

bool kind_from_name(const std::string& name, sim::FaultKind* out) {
  for (const sim::FaultKind k :
       {sim::FaultKind::kBitFlip, sim::FaultKind::kLinkStall,
        sim::FaultKind::kTileFreeze, sim::FaultKind::kOverrun}) {
    if (name == sim::fault_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string ChaosSignature::to_string() const {
  std::string s = pass ? "pass" : "FAIL";
  if (!pass) {
    s += '(';
    s += category;
    s += ')';
  }
  s += " outcome=";
  s += drain_outcome_name(outcome);
  if (stalled_in_run) s += " stalled_in_run";
  if (degraded) s += " degraded";
  if (stall_tile >= 0) {
    s += " frozen_tile=";
    s += std::to_string(stall_tile);
  }
  return s;
}

ChaosSignature signature_of(const ChaosResult& r) {
  ChaosSignature s;
  s.pass = r.pass;
  s.category = r.failure.substr(0, r.failure.find(':'));
  s.outcome = r.outcome;
  s.stalled_in_run = r.stalled_in_run;
  s.degraded = r.degraded;
  s.stall_tile = r.stall_tile;
  return s;
}

std::string to_json(const ChaosRepro& repro) {
  std::string s = "{\n  \"version\": 2,\n  \"spec\": {\"seed\": ";
  s += std::to_string(repro.spec.seed);
  s += ", \"mix\": ";
  append_escaped(s, repro.spec.mix.name());
  s += ", \"run_cycles\": ";
  s += std::to_string(repro.spec.run_cycles);
  s += ", \"drain_cycles\": ";
  s += std::to_string(repro.spec.drain_cycles);
  s += ", \"faults_per_kind\": ";
  s += std::to_string(repro.spec.faults_per_kind);
  s += ", \"bytes\": ";
  s += std::to_string(repro.spec.bytes);
  s += ", \"load\": ";
  append_double(s, repro.spec.load);
  s += ", \"threads\": ";
  s += std::to_string(repro.spec.threads);
  s += ", \"reliable_links\": ";
  s += repro.spec.reliable_links ? "true" : "false";
  s += ", \"recovery\": ";
  s += repro.spec.recovery ? "true" : "false";
  s += ", \"force_dense\": ";
  s += repro.spec.force_dense ? "true" : "false";
  s += ", \"traffic_profile\": ";
  append_escaped(s, repro.spec.traffic_profile);
  s += ", \"inject_invariant_failure_at\": ";
  s += std::to_string(repro.spec.inject_invariant_failure_at);
  s += ", \"endurance\": {\"enabled\": ";
  s += repro.spec.endurance.enabled ? "true" : "false";
  s += ", \"invariant_cadence\": ";
  s += std::to_string(repro.spec.endurance.invariant_cadence);
  s += ", \"checkpoint_interval\": ";
  s += std::to_string(repro.spec.endurance.checkpoint_interval);
  s += ", \"checkpoint_ring\": ";
  s += std::to_string(repro.spec.endurance.checkpoint_ring);
  s += ", \"checkpoint_grace\": ";
  s += std::to_string(repro.spec.endurance.checkpoint_grace);
  s += "}},\n  \"signature\": {\"pass\": ";
  s += repro.signature.pass ? "true" : "false";
  s += ", \"category\": ";
  append_escaped(s, repro.signature.category);
  s += ", \"outcome\": ";
  append_escaped(s, drain_outcome_name(repro.signature.outcome));
  s += ", \"stalled_in_run\": ";
  s += repro.signature.stalled_in_run ? "true" : "false";
  s += ", \"degraded\": ";
  s += repro.signature.degraded ? "true" : "false";
  s += ", \"stall_tile\": ";
  s += std::to_string(repro.signature.stall_tile);
  s += "},\n  \"digest\": ";
  append_hex64(s, repro.digest);
  s += ",\n  \"failure\": {\"detail\": ";
  append_escaped(s, repro.failure);
  s += ", \"cycle\": ";
  s += std::to_string(repro.failure_cycle);
  s += "},\n  \"soak\": {\"epoch\": ";
  s += std::to_string(repro.soak_epoch);
  s += ", \"start_cycle\": ";
  s += std::to_string(repro.soak_start_cycle);
  s += "},\n  \"anchors\": [";
  for (std::size_t n = 0; n < repro.anchors.size(); ++n) {
    const ReplayAnchor& a = repro.anchors[n];
    s += n == 0 ? "\n" : ",\n";
    s += "    {\"cycle\": ";
    s += std::to_string(a.cycle);
    s += ", \"chip_digest\": ";
    append_hex64(s, a.chip_digest);
    s += ", \"router_digest\": ";
    append_hex64(s, a.router_digest);
    s += "}";
  }
  s += "\n  ],\n  \"events\": [";
  for (std::size_t n = 0; n < repro.events.size(); ++n) {
    const sim::FaultEvent& e = repro.events[n];
    s += n == 0 ? "\n" : ",\n";
    s += "    {\"kind\": ";
    append_escaped(s, sim::fault_kind_name(e.kind));
    s += ", \"at\": ";
    s += std::to_string(e.at);
    s += ", \"duration\": ";
    s += std::to_string(e.duration);
    s += ", \"permanent\": ";
    s += e.permanent ? "true" : "false";
    s += ", \"channel\": ";
    append_escaped(s, e.channel);
    s += ", \"tile\": ";
    s += std::to_string(e.tile);
    s += ", \"port\": ";
    s += std::to_string(e.port);
    s += ", \"bit\": ";
    s += std::to_string(e.bit);
    s += ", \"factor\": ";
    s += std::to_string(e.factor);
    s += "}";
  }
  s += "\n  ]\n}\n";
  return s;
}

bool from_json(const std::string& text, ChaosRepro* out, std::string* error) {
  Parser p{text, 0, {}};
  ChaosRepro repro;
  bool mix_ok = true;
  bool outcome_ok = true;
  bool kinds_ok = true;

  const bool ok = p.parse_object([&](const std::string& key) {
    if (key == "spec") {
      return p.parse_object([&](const std::string& k) {
        double num = 0;
        std::string str;
        if (k == "mix") {
          if (!p.parse_string(&str)) return false;
          mix_ok = parse_mix(str, &repro.spec.mix);
          return true;
        }
        if (k == "seed") return p.parse_u64(&repro.spec.seed);
        if (k == "reliable_links") return p.parse_bool(&repro.spec.reliable_links);
        if (k == "recovery") return p.parse_bool(&repro.spec.recovery);
        if (k == "force_dense") return p.parse_bool(&repro.spec.force_dense);
        if (k == "traffic_profile") return p.parse_string(&repro.spec.traffic_profile);
        if (k == "endurance") {
          return p.parse_object([&](const std::string& ek) {
            if (ek == "enabled") return p.parse_bool(&repro.spec.endurance.enabled);
            double en = 0;
            if (!p.parse_number(&en)) return false;
            if (ek == "invariant_cadence") repro.spec.endurance.invariant_cadence = static_cast<common::Cycle>(en);
            else if (ek == "checkpoint_interval") repro.spec.endurance.checkpoint_interval = static_cast<common::Cycle>(en);
            else if (ek == "checkpoint_ring") repro.spec.endurance.checkpoint_ring = static_cast<std::size_t>(en);
            else if (ek == "checkpoint_grace") repro.spec.endurance.checkpoint_grace = static_cast<common::Cycle>(en);
            return true;
          });
        }
        if (!p.parse_number(&num)) return false;
        if (k == "run_cycles") repro.spec.run_cycles = static_cast<common::Cycle>(num);
        else if (k == "drain_cycles") repro.spec.drain_cycles = static_cast<common::Cycle>(num);
        else if (k == "faults_per_kind") repro.spec.faults_per_kind = static_cast<int>(num);
        else if (k == "bytes") repro.spec.bytes = static_cast<common::ByteCount>(num);
        else if (k == "load") repro.spec.load = num;
        else if (k == "threads") repro.spec.threads = static_cast<int>(num);
        else if (k == "inject_invariant_failure_at") repro.spec.inject_invariant_failure_at = static_cast<common::Cycle>(num);
        return true;  // unknown numeric field: already consumed
      });
    }
    if (key == "signature") {
      return p.parse_object([&](const std::string& k) {
        if (k == "pass") return p.parse_bool(&repro.signature.pass);
        if (k == "category") return p.parse_string(&repro.signature.category);
        if (k == "outcome") {
          std::string str;
          if (!p.parse_string(&str)) return false;
          outcome_ok = outcome_from_name(str, &repro.signature.outcome);
          return true;
        }
        if (k == "stalled_in_run") return p.parse_bool(&repro.signature.stalled_in_run);
        if (k == "degraded") return p.parse_bool(&repro.signature.degraded);
        if (k == "stall_tile") {
          double num = 0;
          if (!p.parse_number(&num)) return false;
          repro.signature.stall_tile = static_cast<int>(num);
          return true;
        }
        return p.skip_value();
      });
    }
    if (key == "digest") {
      std::string str;
      if (!p.parse_string(&str)) return false;
      repro.digest = std::strtoull(str.c_str(), nullptr, 16);
      return true;
    }
    if (key == "failure") {
      return p.parse_object([&](const std::string& k) {
        if (k == "detail") return p.parse_string(&repro.failure);
        if (k == "cycle") {
          double num = 0;
          if (!p.parse_number(&num)) return false;
          repro.failure_cycle = static_cast<common::Cycle>(num);
          return true;
        }
        return p.skip_value();
      });
    }
    if (key == "soak") {
      return p.parse_object([&](const std::string& k) {
        double num = 0;
        if (!p.parse_number(&num)) return false;
        if (k == "epoch") repro.soak_epoch = static_cast<std::int64_t>(num);
        else if (k == "start_cycle") repro.soak_start_cycle = static_cast<common::Cycle>(num);
        return true;
      });
    }
    if (key == "anchors") {
      if (!p.consume('[')) return false;
      while (!p.peek(']')) {
        ReplayAnchor a;
        const bool field_ok = p.parse_object([&](const std::string& k) {
          if (k == "cycle") {
            double num = 0;
            if (!p.parse_number(&num)) return false;
            a.cycle = static_cast<common::Cycle>(num);
            return true;
          }
          std::string str;
          if (!p.parse_string(&str)) return false;
          const std::uint64_t v = std::strtoull(str.c_str(), nullptr, 16);
          if (k == "chip_digest") a.chip_digest = v;
          else if (k == "router_digest") a.router_digest = v;
          return true;
        });
        if (!field_ok) return false;
        repro.anchors.push_back(a);
      }
      return p.consume(']');
    }
    if (key == "events") {
      if (!p.consume('[')) return false;
      while (!p.peek(']')) {
        sim::FaultEvent e;
        const bool field_ok = p.parse_object([&](const std::string& k) {
          double num = 0;
          std::string str;
          if (k == "kind") {
            if (!p.parse_string(&str)) return false;
            kinds_ok = kinds_ok && kind_from_name(str, &e.kind);
            return true;
          }
          if (k == "channel") return p.parse_string(&e.channel);
          if (k == "permanent") return p.parse_bool(&e.permanent);
          if (!p.parse_number(&num)) return false;
          if (k == "at") e.at = static_cast<common::Cycle>(num);
          else if (k == "duration") e.duration = static_cast<std::uint64_t>(num);
          else if (k == "tile") e.tile = static_cast<int>(num);
          else if (k == "port") e.port = static_cast<int>(num);
          else if (k == "bit") e.bit = static_cast<std::uint32_t>(num);
          else if (k == "factor") e.factor = static_cast<std::uint32_t>(num);
          return true;
        });
        if (!field_ok) return false;
        repro.events.push_back(std::move(e));
      }
      return p.consume(']');
    }
    return p.skip_value();  // "version" and future fields
  });

  if (!ok) {
    if (error != nullptr) *error = p.err.empty() ? "malformed JSON" : p.err;
    return false;
  }
  if (!mix_ok) {
    if (error != nullptr) *error = "unknown mix name";
    return false;
  }
  if (!outcome_ok) {
    if (error != nullptr) *error = "unknown outcome name";
    return false;
  }
  if (!kinds_ok) {
    if (error != nullptr) *error = "unknown fault kind";
    return false;
  }
  *out = std::move(repro);
  return true;
}

std::vector<sim::FaultEvent> minimize_events(
    const ChaosSpec& spec, const std::vector<sim::FaultEvent>& events,
    const ChaosSignature& target, MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;
  st.original_events = events.size();
  st.runs = 0;

  const auto reproduces = [&](const std::vector<sim::FaultEvent>& subset) {
    ++st.runs;
    return signature_of(run_chaos_events(spec, subset)) == target;
  };

  // Classic ddmin (Zeller & Hildebrandt): split into n chunks, try each
  // chunk alone, then each complement; on a reduction restart with finer or
  // coarser granularity, stop when chunks are single events and nothing
  // reduces.
  std::vector<sim::FaultEvent> current = events;
  std::size_t n = 2;
  while (current.size() >= 2) {
    const std::size_t sz = current.size();
    n = std::min(n, sz);
    const std::size_t base = sz / n;
    const std::size_t rem = sz % n;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;  // [begin, end)
    for (std::size_t k = 0, pos = 0; k < n; ++k) {
      const std::size_t len = base + (k < rem ? 1 : 0);
      chunks.emplace_back(pos, pos + len);
      pos += len;
    }
    const auto slice = [&current](std::size_t b, std::size_t e) {
      return std::vector<sim::FaultEvent>(
          current.begin() + static_cast<std::ptrdiff_t>(b),
          current.begin() + static_cast<std::ptrdiff_t>(e));
    };

    bool reduced = false;
    for (const auto& [b, e] : chunks) {
      std::vector<sim::FaultEvent> subset = slice(b, e);
      if (reproduces(subset)) {
        current = std::move(subset);
        n = 2;
        reduced = true;
        break;
      }
    }
    if (!reduced && n > 2) {
      for (const auto& [b, e] : chunks) {
        std::vector<sim::FaultEvent> complement = slice(0, b);
        std::vector<sim::FaultEvent> tail = slice(e, sz);
        complement.insert(complement.end(), tail.begin(), tail.end());
        if (reproduces(complement)) {
          current = std::move(complement);
          n = std::max<std::size_t>(n - 1, 2);
          reduced = true;
          break;
        }
      }
    }
    if (!reduced) {
      if (n >= sz) break;
      n = std::min(sz, n * 2);
    }
  }
  st.minimized_events = current.size();
  return current;
}

}  // namespace raw::router
