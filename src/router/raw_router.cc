#include "router/raw_router.h"

#include <algorithm>
#include <stdexcept>

#include "common/assert.h"
#include "common/profiler.h"

namespace raw::router {

void RouterConfig::validate() const {
  if (link_fifo_depth < net::Ipv4Header::kWords) {
    throw std::invalid_argument(
        "RouterConfig.link_fifo_depth must be >= " +
        std::to_string(net::Ipv4Header::kWords) +
        " (edge FIFOs hold a full IP header); got " +
        std::to_string(link_fifo_depth));
  }
  if (line_card_queue_words == 0) {
    throw std::invalid_argument(
        "RouterConfig.line_card_queue_words must be positive: a zero-capacity "
        "card queue drops every packet before it reaches the chip");
  }
  if (watchdog.enabled && watchdog.check_interval == 0) {
    throw std::invalid_argument(
        "RouterConfig.watchdog.check_interval must be positive when the "
        "watchdog is enabled");
  }
  if (threads < 0) {
    throw std::invalid_argument(
        "RouterConfig.threads must be >= 0 (0 resolves RAWSIM_THREADS); got " +
        std::to_string(threads));
  }
  if (link.enabled && link.max_retries == 0) {
    throw std::invalid_argument(
        "RouterConfig.link.max_retries must be positive when reliable links "
        "are enabled: a zero retransmit budget can never repair a word");
  }
  if (link.enabled && link.replay_depth < link.retransmit_rtt) {
    throw std::invalid_argument(
        "RouterConfig.link.replay_depth (" + std::to_string(link.replay_depth) +
        ") must cover the retransmit round-trip (" +
        std::to_string(link.retransmit_rtt) +
        " cycles): words in flight during a NACK need replay frames");
  }
  if (link.enabled && link.replay_depth < link_fifo_depth) {
    throw std::invalid_argument(
        "RouterConfig.link.replay_depth (" + std::to_string(link.replay_depth) +
        ") must be >= link_fifo_depth (" + std::to_string(link_fifo_depth) +
        "): every buffered word needs its replay frame");
  }
  if (endurance.enabled) {
    if (endurance.invariant_cadence == 0) {
      throw std::invalid_argument(
          "RouterConfig.endurance.invariant_cadence must be positive: a "
          "zero cadence would sweep the invariants every cycle boundary "
          "forever");
    }
    if (endurance.checkpoint_interval == 0) {
      throw std::invalid_argument(
          "RouterConfig.endurance.checkpoint_interval must be positive: a "
          "zero interval would capture a snapshot at every cycle");
    }
    if (endurance.checkpoint_ring == 0) {
      throw std::invalid_argument(
          "RouterConfig.endurance.checkpoint_ring must be positive: with no "
          "retained checkpoints a failure bundle has no replay anchor");
    }
    if (!watchdog.enabled) {
      throw std::invalid_argument(
          "RouterConfig.endurance requires the watchdog: the invariant "
          "sweeps assume the tighter liveness net underneath them");
    }
    if (endurance.invariant_cadence < watchdog.check_interval) {
      throw std::invalid_argument(
          "RouterConfig.endurance.invariant_cadence (" +
          std::to_string(endurance.invariant_cadence) +
          ") must be >= watchdog.check_interval (" +
          std::to_string(watchdog.check_interval) +
          "): the watchdog is the finer-grained net, sweeping invariants "
          "more often than it just re-reads unchanged counters");
    }
  }
}

const char* drain_outcome_name(DrainOutcome o) {
  switch (o) {
    case DrainOutcome::kDrained: return "drained";
    case DrainOutcome::kLossQuiesced: return "loss_quiesced";
    case DrainOutcome::kStalled: return "stalled";
    case DrainOutcome::kTimeout: return "timeout";
    case DrainOutcome::kDrainedDegraded: return "drained_degraded";
    case DrainOutcome::kInvariantViolation: return "invariant_violation";
  }
  return "?";
}

RawRouter::RawRouter(RouterConfig config, net::RouteTable table,
                     net::TrafficConfig traffic, std::uint64_t seed)
    : config_(config),
      table_(std::move(table)),
      forwarding_(net::SmallTable::build(table_.trie())),
      compiler_(layout_),
      traffic_(traffic, seed) {
  RAW_ASSERT_MSG(traffic.num_ports == kNumPorts, "router has four ports");
  config_.validate();

  sim::ChipConfig chip_cfg;
  chip_cfg.shape = sim::GridShape{4, 4};
  chip_cfg.with_dynamic_network = true;  // lookup RPC path
  chip_cfg.link_fifo_depth = config_.link_fifo_depth;
  chip_cfg.threads = config_.threads;
  chip_ = std::make_unique<sim::Chip>(chip_cfg);
  if (config_.link.enabled) {
    chip_->enable_link_protection(sim::LinkProtectionParams{
        config_.link.max_retries, config_.link.retransmit_rtt,
        config_.link.replay_depth});
  }
  runner_ = std::make_unique<exec::ParallelRunner>(*chip_, config_.threads);
  runner_->set_max_lookahead(config_.max_lookahead);

  core_.chip = chip_.get();
  core_.layout = &layout_;
  core_.table = &table_;
  core_.forwarding = &forwarding_;
  core_.config = config_.runtime;
  core_.ledger = &ledger_;

  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles tiles = layout_.port(p);
    const PortEdges edges = layout_.edges(p);

    // Switch programs (compile-time schedules).
    const CrossbarSchedule cb = compiler_.compile_crossbar(p);
    const IngressSchedule in = compiler_.compile_ingress(p);
    const EgressSchedule eg = compiler_.compile_egress(p);
    chip_->tile(tiles.crossbar).switch_proc().load(cb.program);
    chip_->tile(tiles.ingress).switch_proc().load(in.program);
    chip_->tile(tiles.egress).switch_proc().load(eg.program);

    // Tile-processor programs.
    chip_->tile(tiles.ingress).set_program(make_ingress_program(core_, p, in));
    chip_->tile(tiles.lookup).set_program(make_lookup_program(core_, p));
    chip_->tile(tiles.crossbar).set_program(make_crossbar_program(core_, p, cb));
    chip_->tile(tiles.egress).set_program(make_egress_program(core_, p, eg));

    // Line cards.
    const sim::IoPort in_port = chip_->io_port(0, tiles.ingress, edges.ingress_edge);
    const sim::IoPort out_port = chip_->io_port(0, tiles.egress, edges.egress_edge);
    inputs_[static_cast<std::size_t>(p)] = std::make_unique<InputLineCard>(
        in_port.to_chip, p, &traffic_, &ledger_, config_.line_card_queue_words);
    outputs_[static_cast<std::size_t>(p)] =
        std::make_unique<OutputLineCard>(out_port.from_chip, p, &ledger_);
    chip_->add_device(inputs_[static_cast<std::size_t>(p)].get());
    chip_->add_device(outputs_[static_cast<std::size_t>(p)].get());
  }

  if (config_.channel_stats) chip_->enable_channel_stats();
}

void RawRouter::set_tracer(common::PacketTracer* tracer) {
  ledger_.tracer = tracer;
  core_.tracer = tracer;
  runner_->set_tracer(tracer);
  if (tracer == nullptr) return;
  static const char* kRoleNames[] = {"In", "Lookup", "Xbar", "Out"};
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles tiles = layout_.port(p);
    const int role_tiles[] = {tiles.ingress, tiles.lookup, tiles.crossbar,
                              tiles.egress};
    for (int r = 0; r < 4; ++r) {
      tracer->set_track_name(role_tiles[r], "tile" + std::to_string(role_tiles[r]) +
                                                " " + kRoleNames[r] +
                                                std::to_string(p));
    }
    tracer->set_track_name(input_card_track(p),
                           "port" + std::to_string(p) + " in-card");
    tracer->set_track_name(output_card_track(p),
                           "port" + std::to_string(p) + " out-card");
  }
}

void RawRouter::export_metrics(common::MetricRegistry& registry,
                               const std::string& prefix) const {
  const common::Cycle cycles = chip_->cycle();
  for (int p = 0; p < kNumPorts; ++p) {
    const InputLineCard& in = *inputs_[static_cast<std::size_t>(p)];
    const OutputLineCard& out = *outputs_[static_cast<std::size_t>(p)];
    const PortCounters& ctr = core_.counters[static_cast<std::size_t>(p)];
    const std::string port = prefix + "/port" + std::to_string(p);

    registry.counter(port + "/ingress/offered_packets").set(in.offered_packets());
    registry.counter(port + "/ingress/offered_bytes").set(in.offered_bytes());
    registry.counter(port + "/ingress/dropped_packets").set(in.dropped_packets());
    registry.counter(port + "/ingress/packets_in").set(ctr.packets_in);
    registry.counter(port + "/ingress/fragments").set(ctr.fragments);
    registry.counter(port + "/ingress/ttl_drops").set(ctr.ttl_drops);
    registry.counter(port + "/ingress/no_route_drops").set(ctr.no_route_drops);

    registry.counter(port + "/lookup/lookups").set(ctr.lookups);

    registry.counter(port + "/crossbar/quanta").set(ctr.quanta);
    registry.counter(port + "/crossbar/grants").set(ctr.grants);
    registry.counter(port + "/crossbar/denials").set(ctr.denials);
    registry.counter(port + "/crossbar/empty_headers").set(ctr.empty_headers);
    registry.counter(port + "/crossbar/out_descs").set(ctr.out_descs);
    registry.counter(port + "/crossbar/out_words").set(ctr.out_words);

    registry.counter(port + "/egress/cut_through").set(ctr.cut_through);
    registry.counter(port + "/egress/reassembled").set(ctr.reassembled);

    registry.counter(port + "/ingress/malformed_drops").set(ctr.malformed_drops);
    registry.counter(port + "/ingress/resync_slides").set(ctr.resync_slides);
    registry.counter(port + "/ingress/dead_port_drops").set(ctr.dead_port_drops);

    registry.counter(port + "/egress/delivered_packets").set(out.delivered_packets());
    registry.counter(port + "/egress/delivered_bytes").set(out.delivered_bytes());
    registry.counter(port + "/egress/errors").set(out.errors());
    registry.counter(port + "/egress/dropped_invalid").set(out.dropped_invalid());
    registry.counter(port + "/egress/unmatched_frames").set(out.unmatched_frames());
    registry.counter(port + "/egress/resyncs").set(out.resyncs());
    registry.counter(port + "/egress/resync_words").set(out.resync_words());

    const common::Histogram& lat = out.latency_histogram();
    registry.gauge(port + "/latency/p50").set(lat.quantile(0.50));
    registry.gauge(port + "/latency/p95").set(lat.quantile(0.95));
    registry.gauge(port + "/latency/p99").set(lat.quantile(0.99));
    registry.gauge(port + "/latency/max").set(out.latency().max());
    registry.gauge(port + "/latency/mean").set(out.latency().mean());
    registry.counter(port + "/latency/samples").set(out.latency().count());

    registry.gauge(port + "/gbps").set(common::gbps(out.delivered_bytes(), cycles));
    registry.gauge(port + "/mpps").set(common::mpps(out.delivered_packets(), cycles));
    registry.gauge(port + "/drop_fraction")
        .set(in.offered_packets() > 0
                 ? static_cast<double>(in.dropped_packets()) /
                       static_cast<double>(in.offered_packets())
                 : 0.0);
  }

  registry.gauge(prefix + "/gbps").set(gbps());
  registry.gauge(prefix + "/mpps").set(mpps());
  registry.counter(prefix + "/delivered_packets").set(delivered_packets());
  registry.counter(prefix + "/delivered_bytes").set(delivered_bytes());
  registry.counter(prefix + "/errors").set(errors());

  registry.counter(prefix + "/watchdog/trips").set(watchdog_trips_);
  registry.counter(prefix + "/recovery/recoveries").set(recoveries_);
  registry.counter(prefix + "/recovery/schedule_generation")
      .set(static_cast<std::uint64_t>(schedule_generation_));
  registry.counter(prefix + "/recovery/degraded").set(degraded_ ? 1 : 0);
  registry.counter(prefix + "/recovery/dead_tiles").set(dead_tiles_.size());
  registry.counter(prefix + "/recovery/written_off")
      .set(recovery_report_.has_value() ? recovery_report_->written_off : 0);
  if (config_.link.enabled) {
    registry.counter("faults/recovered/retransmits")
        .set(chip_->link_retransmits());
    registry.counter("faults/recovered/delivered_corrupt")
        .set(chip_->link_delivered_corrupt());
    registry.counter("faults/recovered/stall_cycles")
        .set(chip_->link_stall_cycles());
  }
  registry.counter(prefix + "/conservation/offered").set(offered_packets());
  registry.counter(prefix + "/conservation/dropped_at_card").set(dropped_at_card());
  registry.counter(prefix + "/conservation/delivered").set(ledger_.erased_delivered);
  registry.counter(prefix + "/conservation/invalid").set(ledger_.erased_invalid);
  registry.counter(prefix + "/conservation/ingress_drops").set(ledger_.erased_ingress);
  registry.counter(prefix + "/conservation/lost").set(ledger_.erased_lost);
  registry.counter(prefix + "/conservation/in_flight").set(ledger_.in_flight.size());
  if (const sim::FaultPlan* faults = chip_->fault_plan()) {
    faults->export_metrics(registry, "faults");
  }

  chip_->export_metrics(registry, prefix + "/chip");
}

void RawRouter::set_fault_plan(sim::FaultPlan* plan) {
  if (plan != nullptr && ledger_.tracer != nullptr) {
    plan->set_tracer(ledger_.tracer);
  }
  chip_->set_fault_plan(plan);
}

bool RawRouter::work_pending() const {
  for (const auto& in : inputs_) {
    if (!in->idle()) return true;
  }
  return !ledger_.in_flight.empty();
}

void RawRouter::flight_mark() {
  common::Profiler* const prof = runner_->profiler();
  if (prof != nullptr && prof->flight_enabled()) {
    prof->flight_snap(chip_->cycle(), /*on_stall=*/true);
  }
}

bool RawRouter::check_watchdog() {
  const WatchdogConfig& wd = config_.watchdog;
  const common::Cycle now = chip_->cycle();

  // Hard trip: nothing moved anywhere for the bound while work is queued.
  // The idle quantum ring circulates continuously on a healthy chip, so
  // this fires only when the fabric is genuinely wedged. The second guard is
  // the recovery grace period: a reconfiguration resets the fabric, so the
  // pre-recovery progress staleness must not re-trip before the degraded
  // fabric has had a full bound to move a word (vacuously true before the
  // first recovery, when last_recovery_cycle_ is 0).
  if (now - chip_->last_progress_cycle() >= wd.no_progress_bound &&
      now - last_recovery_cycle_ >= wd.no_progress_bound && work_pending()) {
    if (try_recover()) return false;
    ++watchdog_trips_;
    stall_report_ = build_stall_report(*chip_, layout_,
                                       StallReport::Cause::kNoForwardProgress,
                                       ledger_.in_flight.size());
    flight_mark();
    return true;
  }

  // Soft flag: a port with queued input whose grants stopped advancing.
  // Reported, not fatal — an unfair token policy starves without wedging
  // (the fairness ablation does this deliberately).
  std::vector<int> starved;
  for (int p = 0; p < kNumPorts; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    const std::uint64_t grants = core_.counters[pi].grants;
    if (grants != starve_grants_[pi] || inputs_[pi]->idle()) {
      starve_grants_[pi] = grants;
      starve_since_[pi] = now;
    } else if (now - starve_since_[pi] >= wd.starvation_bound) {
      starved.push_back(p);
    }
  }
  if (!starved.empty()) {
    stall_report_ = build_stall_report(*chip_, layout_,
                                       StallReport::Cause::kPortStarvation,
                                       ledger_.in_flight.size());
    stall_report_->starved_ports = std::move(starved);
    flight_mark();
  }
  return false;
}

bool RawRouter::try_recover() {
  if (!config_.recovery.enabled) return false;
  const sim::FaultPlan* plan = chip_->fault_plan();
  if (plan == nullptr) return false;
  std::vector<int> dead = plan->permanently_frozen_tiles();
  // Only a *permanent* freeze justifies abandoning the compiled schedule; a
  // transient one resolves on its own and retrying the same dead set that
  // already failed to make progress would loop forever.
  if (dead.empty() || dead == dead_tiles_) return false;

  ++recoveries_;
  ++schedule_generation_;
  recovery_report_ = reconfigure_degraded(core_, ledger_, inputs_, outputs_,
                                          dead, schedule_generation_);
  dead_tiles_ = std::move(dead);
  degraded_ = true;
  stall_report_.reset();
  last_recovery_cycle_ = chip_->cycle();
  // Reconfiguration reloads every switch program, and SwitchProcessor::load()
  // zeroes the busy/blocked books — tell the monitor to re-baseline its
  // cycle-accounting deltas instead of flagging the reset as a violation.
  if (monitor_ != nullptr) monitor_->notify_counters_reset(*chip_);
  // Reset the starvation baselines too: the degraded fabric counts grants
  // differently (one per packet) and starts from a clean slate.
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    starve_grants_[p] = core_.counters[p].grants;
    starve_since_[p] = chip_->cycle();
  }
  return true;
}

void RawRouter::check_conservation() const {
  const std::uint64_t offered = offered_packets();
  const std::uint64_t accounted =
      dropped_at_card() + ledger_.erased_total() + ledger_.in_flight.size();
  RAW_ASSERT_MSG(offered == accounted,
                 "packet conservation violated: offered != dropped_at_card + "
                 "delivered + invalid + ingress_drops + lost + in_flight");
}

RunStatus RawRouter::run(common::Cycle cycles) {
  if (monitor_ != nullptr) return run_endurance(cycles);
  const WatchdogConfig& wd = config_.watchdog;
  if (!wd.enabled) {
    fabric_run(cycles);
    return RunStatus::kOk;
  }
  const common::Cycle deadline = chip_->cycle() + cycles;
  while (chip_->cycle() < deadline) {
    fabric_run(std::min(wd.check_interval, deadline - chip_->cycle()));
    if (check_watchdog()) return RunStatus::kStalled;
  }
  return degraded_ ? RunStatus::kDegraded : RunStatus::kOk;
}

void RawRouter::arm_endurance(sim::InvariantMonitor* monitor) {
  RAW_ASSERT_MSG(config_.endurance.enabled,
                 "arm_endurance needs config.endurance.enabled");
  RAW_ASSERT_MSG(monitor != nullptr, "arm_endurance needs a monitor");
  RAW_ASSERT_MSG(monitor_ == nullptr, "endurance already armed");
  monitor_ = monitor;
  ring_ = std::make_unique<sim::CheckpointRing>(config_.endurance.checkpoint_ring);
  // Absolute next-due cycles. Everything the endurance loop schedules is an
  // absolute cycle count, so run(x) followed by run(y) walks exactly the
  // trajectory of run(x + y) — anchored replay runs to a checkpoint cycle,
  // verifies the digest, and continues.
  next_watchdog_ = chip_->cycle() + config_.watchdog.check_interval;
  next_invariant_ = chip_->cycle() + config_.endurance.invariant_cadence;
  next_checkpoint_ = chip_->cycle() + config_.endurance.checkpoint_interval;
  register_standard_invariants(*monitor);
}

void RawRouter::register_standard_invariants(sim::InvariantMonitor& monitor) {
  // Chip-level books: park/wake credit balance and per-tile cycle accounting.
  monitor.watch_chip(*chip_);

  // Packet conservation: the ledger identity that check_conservation()
  // asserts at drain exits, re-verified mid-run at every sweep.
  monitor.add_check("router/conservation", [this]() -> std::string {
    const std::uint64_t offered = offered_packets();
    const std::uint64_t accounted =
        dropped_at_card() + ledger_.erased_total() + ledger_.in_flight.size();
    if (offered == accounted) return "";
    return "ledger identity broken: offered " + std::to_string(offered) +
           " != dropped_at_card " + std::to_string(dropped_at_card()) +
           " + erased " + std::to_string(ledger_.erased_total()) +
           " + in_flight " + std::to_string(ledger_.in_flight.size());
  });

  // Reliable-link seq/CRC accounting: counters only move forward, a
  // retransmit can only be caused by an injected bit flip (a spontaneous one
  // means the CRC/seq books corrupted themselves), and with the retry budget
  // validated >= 1 the one-shot flip model never exhausts it, so a corrupt
  // delivery is a protocol failure.
  monitor.add_check(
      "router/link_accounting",
      [this, prev_retr = std::uint64_t{0}, prev_corrupt = std::uint64_t{0},
       prev_stall = std::uint64_t{0}]() mutable -> std::string {
        if (!config_.link.enabled) return "";
        const std::uint64_t retr = chip_->link_retransmits();
        const std::uint64_t corrupt = chip_->link_delivered_corrupt();
        const std::uint64_t stall = chip_->link_stall_cycles();
        if (retr < prev_retr || corrupt < prev_corrupt || stall < prev_stall) {
          return "link counters went backwards (retransmits " +
                 std::to_string(prev_retr) + "->" + std::to_string(retr) +
                 ", corrupt " + std::to_string(prev_corrupt) + "->" +
                 std::to_string(corrupt) + ", stalls " +
                 std::to_string(prev_stall) + "->" + std::to_string(stall) + ")";
        }
        prev_retr = retr;
        prev_corrupt = corrupt;
        prev_stall = stall;
        std::uint64_t flips_due = 0;
        if (const sim::FaultPlan* plan = chip_->fault_plan()) {
          for (const sim::FaultEvent& e : plan->events()) {
            if (e.kind == sim::FaultKind::kBitFlip && e.at <= chip_->cycle()) {
              ++flips_due;
            }
          }
        }
        if (flips_due == 0 && retr != 0) {
          return "retransmits (" + std::to_string(retr) +
                 ") without any injected bit flip: CRC/seq books corrupt";
        }
        if (corrupt != 0) {
          return "words delivered corrupt (" + std::to_string(corrupt) +
                 ") despite link protection: retry budget exhausted under a "
                 "one-shot flip model";
        }
        return "";
      });

  // Watchdog liveness: the run loop must actually be invoking the watchdog.
  // A wedge can legitimately outlive the no-progress bound by one check
  // interval (detection quantum) — beyond bound + 2 intervals the net
  // itself has failed. Mirrors check_watchdog's recovery grace.
  monitor.add_check("router/watchdog_liveness", [this]() -> std::string {
    const WatchdogConfig& wd = config_.watchdog;
    if (!wd.enabled) return "";
    const common::Cycle now = chip_->cycle();
    const common::Cycle slack = wd.no_progress_bound + 2 * wd.check_interval;
    if (work_pending() && now - chip_->last_progress_cycle() > slack &&
        now - last_recovery_cycle_ > slack) {
      return "no forward progress for " +
             std::to_string(now - chip_->last_progress_cycle()) +
             " cycles with work pending: the watchdog net is not firing";
    }
    return "";
  });
}

bool RawRouter::sweep_invariants() {
  const std::optional<sim::InvariantViolation> v =
      monitor_->sweep(chip_->cycle());
  if (!v.has_value()) return false;
  invariant_violation_ = v;
  flight_mark();
  return true;
}

void RawRouter::capture_checkpoint() {
  // Chip::snapshot needs the dynamic network quiet (an RPC word split across
  // a snapshot/restore boundary has no home). Slide the capture point
  // forward a cycle at a time until it is, bounded by the grace window; the
  // slide itself is deterministic, so a replay slides identically and the
  // anchor cycle means the same state in both runs.
  const sim::DynamicNetwork* dyn = chip_->dynamic_network();
  common::Cycle slid = 0;
  while (dyn != nullptr && dyn->words_in_flight() != 0 &&
         slid < config_.endurance.checkpoint_grace) {
    fabric_run(1);
    ++slid;
  }
  if (dyn != nullptr && dyn->words_in_flight() != 0) {
    ++checkpoints_skipped_;
    return;
  }
  ring_->capture(*chip_, state_digest());
}

RunStatus RawRouter::run_endurance(common::Cycle cycles) {
  const WatchdogConfig& wd = config_.watchdog;
  const EnduranceConfig& en = config_.endurance;
  const common::Cycle deadline = chip_->cycle() + cycles;
  while (chip_->cycle() < deadline) {
    const common::Cycle next = std::min(
        {deadline, next_watchdog_, next_invariant_, next_checkpoint_});
    if (next > chip_->cycle()) fabric_run(next - chip_->cycle());
    // Process every due stream before re-checking the deadline, so a stream
    // due exactly at the deadline still fires — run(anchor_cycle) must end
    // with the anchor checkpoint captured. Catch-up loops keep the next-due
    // cycles strictly in the future even after a checkpoint slide.
    if (chip_->cycle() >= next_watchdog_) {
      while (next_watchdog_ <= chip_->cycle()) {
        next_watchdog_ += wd.check_interval;
      }
      if (check_watchdog()) return RunStatus::kStalled;
    }
    if (chip_->cycle() >= next_checkpoint_) {
      capture_checkpoint();
      while (next_checkpoint_ <= chip_->cycle()) {
        next_checkpoint_ += en.checkpoint_interval;
      }
    }
    if (chip_->cycle() >= next_invariant_) {
      while (next_invariant_ <= chip_->cycle()) {
        next_invariant_ += en.invariant_cadence;
      }
      if (sweep_invariants()) return RunStatus::kInvariantViolation;
    }
  }
  return degraded_ ? RunStatus::kDegraded : RunStatus::kOk;
}

bool RawRouter::drain(common::Cycle max_cycles) {
  for (auto& in : inputs_) in->stop();
  const auto all_drained = [this] {
    for (const auto& in : inputs_) {
      if (!in->idle()) return false;
    }
    return ledger_.in_flight.empty();
  };

  const WatchdogConfig& wd = config_.watchdog;
  if (!wd.enabled) {
    const bool ok = fabric_run_until(all_drained, max_cycles);
    drain_outcome_ = ok ? (degraded_ ? DrainOutcome::kDrainedDegraded
                                     : DrainOutcome::kDrained)
                        : DrainOutcome::kTimeout;
    if (!ok) flight_mark();
    check_conservation();
    return ok;
  }

  // Watchdog path. Forward progress cannot signal quiescence here — the
  // quantum ring circulates empty headers forever — so the drain watches the
  // ledger instead: once the inputs are empty and the in-flight set has not
  // shrunk for the no-progress bound, whatever remains is lost (eaten by an
  // injected fault) and is written off so the accounting still closes.
  const common::Cycle deadline = chip_->cycle() + max_cycles;
  std::size_t last_in_flight = ledger_.in_flight.size();
  common::Cycle last_shrink = chip_->cycle();
  while (true) {
    const common::Cycle remaining = deadline - chip_->cycle();
    common::Cycle chunk = std::min(wd.check_interval, remaining);
    if (monitor_ != nullptr && next_invariant_ > chip_->cycle()) {
      chunk = std::min(chunk, next_invariant_ - chip_->cycle());
    }
    if (fabric_run_until(all_drained, chunk)) {
      // One final sweep: a drain that empties the ledger through broken
      // books must not read as clean. No conservation assert on the
      // violation path — the books themselves may be the violation.
      if (monitor_ != nullptr && sweep_invariants()) {
        drain_outcome_ = DrainOutcome::kInvariantViolation;
        return false;
      }
      // degraded_ may have flipped mid-drain: a permanent freeze can land
      // after the arrival processes stop, in which case check_watchdog below
      // recovers and the drain completes on the degraded fabric.
      drain_outcome_ = degraded_ ? DrainOutcome::kDrainedDegraded
                                 : DrainOutcome::kDrained;
      check_conservation();
      return true;
    }
    if (check_watchdog()) {
      drain_outcome_ = DrainOutcome::kStalled;
      check_conservation();
      return false;
    }
    if (monitor_ != nullptr && chip_->cycle() >= next_invariant_) {
      while (next_invariant_ <= chip_->cycle()) {
        next_invariant_ += config_.endurance.invariant_cadence;
      }
      if (sweep_invariants()) {
        drain_outcome_ = DrainOutcome::kInvariantViolation;
        return false;
      }
    }
    if (ledger_.in_flight.size() != last_in_flight) {
      last_in_flight = ledger_.in_flight.size();
      last_shrink = chip_->cycle();
    } else if (std::all_of(inputs_.begin(), inputs_.end(),
                           [](const auto& in) { return in->idle(); }) &&
               chip_->cycle() - last_shrink >= wd.no_progress_bound) {
      ledger_.erased_lost += ledger_.in_flight.size();
      ledger_.in_flight.clear();
      drain_outcome_ = DrainOutcome::kLossQuiesced;
      flight_mark();
      check_conservation();
      return false;
    }
    if (chip_->cycle() >= deadline) {
      drain_outcome_ = DrainOutcome::kTimeout;
      flight_mark();
      check_conservation();
      return false;
    }
  }
}

std::uint64_t RawRouter::offered_packets() const {
  std::uint64_t n = 0;
  for (const auto& in : inputs_) n += in->offered_packets();
  return n;
}

std::uint64_t RawRouter::dropped_at_card() const {
  std::uint64_t n = 0;
  for (const auto& in : inputs_) n += in->dropped_packets();
  return n;
}

std::uint64_t RawRouter::delivered_packets() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->delivered_packets();
  return n;
}

common::ByteCount RawRouter::delivered_bytes() const {
  common::ByteCount n = 0;
  for (const auto& out : outputs_) n += out->delivered_bytes();
  return n;
}

std::uint64_t RawRouter::errors() const {
  std::uint64_t n = 0;
  for (const auto& out : outputs_) n += out->errors();
  return n;
}

std::uint64_t RawRouter::state_digest() const {
  std::uint64_t h = chip_->state_digest();
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;  // FNV-1a prime, matching Chip::state_digest
  };
  mix(ledger_.erased_delivered);
  mix(ledger_.erased_invalid);
  mix(ledger_.erased_ingress);
  mix(ledger_.erased_lost);
  mix(ledger_.in_flight.size());
  mix(offered_packets());
  mix(dropped_at_card());
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    const PortCounters& ctr = core_.counters[p];
    mix(ctr.packets_in);
    mix(ctr.fragments);
    mix(ctr.grants);
    mix(ctr.lookups);
    mix(ctr.ttl_drops);
    mix(ctr.no_route_drops);
    mix(ctr.malformed_drops);
    mix(ctr.resync_slides);
    mix(ctr.cut_through);
    mix(ctr.reassembled);
    mix(ctr.dead_port_drops);
    const OutputLineCard& out = *outputs_[p];
    mix(out.delivered_packets());
    mix(out.delivered_bytes());
    mix(out.errors());
    mix(out.resyncs());
  }
  mix(static_cast<std::uint64_t>(drain_outcome_));
  mix(watchdog_trips_);
  mix(recoveries_);
  mix(static_cast<std::uint64_t>(schedule_generation_));
  return h;
}

double RawRouter::gbps() const {
  return common::gbps(delivered_bytes(), chip_->cycle());
}

double RawRouter::mpps() const {
  return common::mpps(delivered_packets(), chip_->cycle());
}

}  // namespace raw::router
