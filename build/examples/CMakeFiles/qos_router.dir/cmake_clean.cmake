file(REMOVE_RECURSE
  "CMakeFiles/qos_router.dir/qos_router.cpp.o"
  "CMakeFiles/qos_router.dir/qos_router.cpp.o.d"
  "qos_router"
  "qos_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
