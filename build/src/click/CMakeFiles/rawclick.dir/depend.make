# Empty dependencies file for rawclick.
# This may be replaced when dependencies are built.
