file(REMOVE_RECURSE
  "CMakeFiles/nonblocking_memory.dir/nonblocking_memory.cpp.o"
  "CMakeFiles/nonblocking_memory.dir/nonblocking_memory.cpp.o.d"
  "nonblocking_memory"
  "nonblocking_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonblocking_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
