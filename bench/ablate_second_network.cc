// Experiment E8 — §5.3: sufficiency of a single Raw static network.
//
// The thesis claims that when there is no contention for output ports, one
// full-duplex connection between neighbouring Crossbar Processors provides
// enough interconnect bandwidth, and using the second static network would
// not improve performance. We demonstrate it by accounting: under
// permutation (peak) traffic the binding resources are the crossbar->egress
// links, not the ring links — every ring link has utilization headroom, so
// a second ring could not add throughput. Under uniform traffic the limit
// is output contention (grants), which a second network does not relieve
// either.
#include <cstdio>

#include "router/raw_router.h"

namespace {

struct LinkUse {
  double ring_cw_max = 0.0;
  double ring_ccw_max = 0.0;
  double egress_max = 0.0;
  double gbps = 0.0;
  double grant_rate = 0.0;  // grants / non-empty headers offered
};

LinkUse measure(raw::net::DestPattern pattern, int hop_offset) {
  raw::router::RouterConfig cfg;
  raw::net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = pattern;
  if (pattern == raw::net::DestPattern::kPermutation) {
    for (int p = 0; p < 4; ++p) t.permutation.push_back((p + hop_offset) % 4);
  }
  t.size = raw::net::SizeDist::kFixed;
  t.fixed_bytes = 1024;
  raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), t, 17);
  const raw::common::Cycle cycles = 150000;
  router.run(cycles);

  LinkUse use;
  use.gbps = router.gbps();
  const raw::router::Layout& layout = router.layout();
  for (int p = 0; p < 4; ++p) {
    const auto& o = layout.orientation(p);
    const int cb = layout.port(p).crossbar;
    const int eg_tile = layout.port(p).crossbar;
    const auto util = [&](raw::sim::Dir d) {
      return static_cast<double>(
                 router.chip().static_link(0, cb, d).words_transferred()) /
             static_cast<double>(cycles);
    };
    use.ring_cw_max = std::max(use.ring_cw_max, util(o.cw_out));
    use.ring_ccw_max = std::max(use.ring_ccw_max, util(o.ccw_out));
    use.egress_max = std::max(use.egress_max, util(o.out));
    (void)eg_tile;
  }
  std::uint64_t grants = 0;
  std::uint64_t offered = 0;
  for (const auto& c : router.core().counters) {
    grants += c.grants;
    offered += c.grants + c.denials;
  }
  use.grant_rate = offered > 0 ? static_cast<double>(grants) /
                                     static_cast<double>(offered)
                               : 0.0;
  return use;
}

void report(const char* name, const LinkUse& u) {
  std::printf("%-24s %10.2f %12.1f%% %12.1f%% %12.1f%% %10.1f%%\n", name,
              u.gbps, 100.0 * u.ring_cw_max, 100.0 * u.ring_ccw_max,
              100.0 * u.egress_max, 100.0 * u.grant_rate);
}

}  // namespace

int main() {
  std::printf("Section 5.3: sufficiency of a single static network\n");
  std::printf("(1,024-byte packets; link utilization = words / cycles, "
              "capacity is 1 word/cycle)\n\n");
  std::printf("%-24s %10s %13s %13s %13s %10s\n", "workload", "Gbps",
              "ring cw max", "ring ccw max", "egress max", "grant rate");

  report("perm +1 (1 hop cw)", measure(raw::net::DestPattern::kPermutation, 1));
  report("perm +2 (figure 5-1)", measure(raw::net::DestPattern::kPermutation, 2));
  report("perm +3 (1 hop ccw)", measure(raw::net::DestPattern::kPermutation, 3));
  report("uniform (average)", measure(raw::net::DestPattern::kUniform, 0));

  std::printf(
      "\nreading: at peak the egress links run at or near the ring maximum —\n"
      "the ring never saturates ahead of the egress links, so doubling ring\n"
      "bandwidth (the second static network) cannot raise peak throughput;\n"
      "under uniform traffic the grant rate (output contention) is the\n"
      "limiter, which extra interconnect bandwidth does not relieve.\n");
  return 0;
}
