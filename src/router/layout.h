// Mapping of router functional elements to Raw tiles (Figure 4-1 / 7-2).
//
// Each of the four ports occupies four tiles: an Ingress Processor on the
// W/E chip edge, a Lookup Processor at the adjacent corner, a Crossbar
// Processor in the centre ring, and an Egress Processor on the N/S edge.
// The crossbar ring runs clockwise through tiles 5 -> 6 -> 10 -> 9.
//
//        Lk0 | Eg0 | Eg1 | Lk1            0  1  2  3
//        In0 | Cb0 | Cb1 | In1            4  5  6  7
//        In3 | Cb3 | Cb2 | In2            8  9 10 11
//        Lk3 | Eg3 | Eg2 | Lk2           12 13 14 15
//
// (The thesis's Figure 7-3 confirms the ingress tiles are 4, 7, 8 and 11.)
#pragma once

#include <array>

#include "sim/coords.h"

namespace raw::router {

inline constexpr int kNumPorts = 4;

struct PortTiles {
  int ingress = -1;
  int lookup = -1;
  int crossbar = -1;
  int egress = -1;
};

/// Physical directions of one crossbar tile's six logical connections
/// (Figure 6-1): the ingress ("in"), the egress ("out"), and the clockwise /
/// counter-clockwise ring neighbours, each with an incoming and an outgoing
/// side on the full-duplex links.
struct CrossbarOrientation {
  sim::Dir in;       // from the ingress tile
  sim::Dir in_back;  // reverse side: toward the ingress tile (grant words)
  sim::Dir out;      // toward the egress tile
  sim::Dir cw_in;    // clockwise stream arriving (from the cw-upstream tile)
  sim::Dir cw_out;   // clockwise stream leaving
  sim::Dir ccw_in;   // counter-clockwise stream arriving
  sim::Dir ccw_out;  // counter-clockwise stream leaving
};

/// Directions used by a port's ingress and egress tiles: where the line
/// cards attach (off-grid) and where the crossbar tile sits.
struct PortEdges {
  sim::Dir ingress_edge;          // off-grid direction of the input line card
  sim::Dir ingress_to_crossbar;   // ingress tile -> crossbar tile
  sim::Dir egress_edge;           // off-grid direction of the output line card
  sim::Dir egress_from_crossbar;  // side of the egress tile facing its crossbar
};

class Layout {
 public:
  /// The thesis 4x4 / 4-port layout.
  Layout();

  [[nodiscard]] const PortTiles& port(int p) const {
    return ports_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const CrossbarOrientation& orientation(int p) const {
    return orient_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const PortEdges& edges(int p) const {
    return edges_[static_cast<std::size_t>(p)];
  }

  /// Ring position of port p equals p: ports are numbered in clockwise ring
  /// order (Cb0=tile5, Cb1=tile6, Cb2=tile10, Cb3=tile9).
  [[nodiscard]] static constexpr int ring_position(int port) { return port; }

  /// Direction from the lookup tile to its port's ingress tile (they are
  /// vertically adjacent), used by the ingress<->lookup message path.
  [[nodiscard]] sim::Dir lookup_to_ingress(int p) const {
    return lookup_dir_[static_cast<std::size_t>(p)];
  }

 private:
  std::array<PortTiles, kNumPorts> ports_;
  std::array<CrossbarOrientation, kNumPorts> orient_;
  std::array<PortEdges, kNumPorts> edges_;
  std::array<sim::Dir, kNumPorts> lookup_dir_;
};

}  // namespace raw::router
