// One Raw tile: a tile processor (behavioural coroutine program), a static
// switch processor, and the register-mapped FIFOs between them.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/channel.h"
#include "sim/switch_isa.h"
#include "sim/switch_processor.h"
#include "sim/tile_task.h"

namespace raw::sim {

/// Tile processor instruction memory: 8,192 32-bit words (§3.2).
inline constexpr std::size_t kTileImemWords = 8192;
/// Tile data memory (cache) capacity: 8,192 32-bit words (§3.2).
inline constexpr std::size_t kTileDmemWords = 8192;

class Tile {
 public:
  Tile(int index, TileCoord coord)
      : index_(index),
        coord_(coord),
        csto_{Channel(tile_name(index) + ".csto"), Channel(tile_name(index) + ".csto2")},
        csti_{Channel(tile_name(index) + ".csti"), Channel(tile_name(index) + ".csti2")} {}

  Tile(const Tile&) = delete;
  Tile& operator=(const Tile&) = delete;
  Tile(Tile&&) = default;
  Tile& operator=(Tile&&) = default;

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] TileCoord coord() const { return coord_; }

  /// Processor -> switch FIFO ($csto / $csto2).
  [[nodiscard]] Channel& csto(int net) { return csto_[static_cast<std::size_t>(net)]; }
  /// Switch -> processor FIFO ($csti / $csti2).
  [[nodiscard]] Channel& csti(int net) { return csti_[static_cast<std::size_t>(net)]; }

  [[nodiscard]] SwitchProcessor& switch_proc() { return switch_; }
  [[nodiscard]] const SwitchProcessor& switch_proc() const { return switch_; }

  void set_program(TileTask task) { task_ = std::move(task); }
  [[nodiscard]] bool programmed() const { return task_.valid(); }
  [[nodiscard]] bool program_done() const { return !task_.valid() || task_.done(); }

  AgentState step_proc() {
    const AgentState s = task_.valid() ? task_.step() : AgentState::kIdle;
    switch (s) {
      case AgentState::kBusy: ++proc_busy_; break;
      case AgentState::kIdle: break;
      default: ++proc_blocked_; break;
    }
    return s;
  }

  AgentState step_switch() { return switch_.step(); }

  /// Channel the tile program is blocked on, if it is blocked on one.
  [[nodiscard]] Channel* proc_blocked_channel() const {
    return task_.blocked_channel();
  }

  /// Sparse-engine catch-up: credits `n` cycles the processor spent parked
  /// in a blocked state without being stepped (see Chip's wake lists).
  void credit_proc_blocked(std::uint64_t n) { proc_blocked_ += n; }

  [[nodiscard]] std::uint64_t proc_cycles_busy() const { return proc_busy_; }
  [[nodiscard]] std::uint64_t proc_cycles_blocked() const { return proc_blocked_; }

 private:
  int index_;
  TileCoord coord_;
  std::array<Channel, kNumStaticNets> csto_;
  std::array<Channel, kNumStaticNets> csti_;
  SwitchProcessor switch_;
  TileTask task_;
  std::uint64_t proc_busy_ = 0;
  std::uint64_t proc_blocked_ = 0;
};

}  // namespace raw::sim
