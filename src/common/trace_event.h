// Packet-lifecycle event tracer.
//
// Components record per-packet lifecycle points (arrival at the line card,
// head of the card queue, header ingested by the chip, lookup reply,
// crossbar grant, exit from the chip) keyed by the packet ledger uid, onto
// one track per tile or port. Storage is a fixed-budget ring buffer: when
// the configured event budget fills, the oldest events are overwritten, so
// a long run keeps its most recent window and never reallocates. When the
// tracer is disabled (the default) `record()` is a single predicted branch,
// and instrumentation sites additionally gate on `enabled()` so hot paths
// pay nothing.
//
// The recorded window exports as Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto, with one named thread (track) per tile and
// per line card and one instant event per lifecycle point.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace raw::common {

enum class PacketEvent : std::uint8_t {
  kArrival = 0,        // packet generated / queued at the input line card
  kHeadOfQueue = 1,    // first word reached the front of the card queue
  kEnterChip = 2,      // header fully ingested by the ingress tile
  kLookupDone = 3,     // LPM reply received by the ingress tile
  kCrossbarGrant = 4,  // crossbar granted words to this packet
  kExitChip = 5,       // packet reassembled and validated at the output card
  kFault = 6,          // injected fault fired (uid = fault ordinal, arg = kind)
};

const char* packet_event_name(PacketEvent e);

class PacketTracer {
 public:
  struct Record {
    std::uint64_t uid = 0;
    Cycle cycle = 0;
    PacketEvent event = PacketEvent::kArrival;
    std::int32_t track = 0;
    std::uint32_t arg = 0;  // event-specific (e.g. granted words)
  };

  /// Starts recording with a ring buffer of `event_budget` events.
  void enable(std::size_t event_budget);
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(std::uint64_t uid, Cycle cycle, PacketEvent event, int track,
              std::uint32_t arg = 0) {
    if (!enabled_) return;
    push(Record{uid, cycle, event, track, arg});
  }

  /// Events currently held (<= budget).
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_ - ring_.size();
  }

  /// Human-readable label for a track id, shown as the thread name in the
  /// trace viewer. Unnamed tracks render as "track<N>".
  void set_track_name(int track, std::string name);

  /// Events oldest-first.
  [[nodiscard]] std::vector<Record> events() const;

  /// Chrome trace_event JSON (JSON-object form with "traceEvents").
  /// Timestamps are microseconds: cycle / clock_hz * 1e6.
  [[nodiscard]] std::string chrome_json(double clock_hz = kRawClockHz) const;

 private:
  void push(const Record& r);

  bool enabled_ = false;
  std::size_t budget_ = 0;
  std::size_t head_ = 0;  // index of the oldest record once the ring is full
  std::vector<Record> ring_;
  std::uint64_t recorded_ = 0;
  std::map<int, std::string> track_names_;
};

}  // namespace raw::common
