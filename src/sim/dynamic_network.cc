#include "sim/dynamic_network.h"

#include "common/assert.h"

namespace raw::sim {

common::Word make_dyn_header(int src_tile, int dest_tile, std::uint32_t payload_words) {
  RAW_ASSERT(src_tile >= 0 && src_tile < 0x10000);
  RAW_ASSERT(dest_tile >= 0 && dest_tile < 0x100);
  RAW_ASSERT(payload_words <= kMaxDynPayloadWords);
  return (static_cast<common::Word>(src_tile) << 16) |
         (static_cast<common::Word>(dest_tile) << 8) | payload_words;
}

int dyn_header_src(common::Word header) { return static_cast<int>(header >> 16); }
int dyn_header_dest(common::Word header) {
  return static_cast<int>((header >> 8) & 0xff);
}
std::uint32_t dyn_header_len(common::Word header) { return header & 0xff; }

DynamicNetwork::DynamicNetwork(GridShape shape, std::size_t endpoint_queue_words)
    : shape_(shape),
      routers_(static_cast<std::size_t>(shape.num_tiles())),
      links_(static_cast<std::size_t>(shape.num_tiles())) {
  for (int t = 0; t < shape_.num_tiles(); ++t) {
    const TileCoord c = shape_.coord(t);
    for (const Dir d : kMeshDirs) {
      if (shape_.contains(GridShape::neighbor(c, d))) {
        links_[static_cast<std::size_t>(t)][static_cast<std::size_t>(d)] =
            std::make_unique<Channel>("dyn" + std::to_string(t) + dir_name(d));
      }
    }
    inject_.emplace_back(endpoint_queue_words);
    eject_.emplace_back(endpoint_queue_words);
  }
}

bool DynamicNetwork::can_inject(int tile, std::uint32_t payload_words) const {
  RAW_ASSERT(payload_words <= kMaxDynPayloadWords);
  return inject_[static_cast<std::size_t>(tile)].free_space() >= payload_words + 1;
}

void DynamicNetwork::inject(int tile, int dest_tile,
                            std::span<const common::Word> payload) {
  RAW_ASSERT_MSG(can_inject(tile, static_cast<std::uint32_t>(payload.size())),
                 "dynamic-network inject queue overflow; poll can_inject first");
  auto& q = inject_[static_cast<std::size_t>(tile)];
  q.push(make_dyn_header(tile, dest_tile, static_cast<std::uint32_t>(payload.size())));
  for (const common::Word w : payload) q.push(w);
  net_words_ += payload.size() + 1;
}

bool DynamicNetwork::has_eject(int tile) const {
  return !eject_[static_cast<std::size_t>(tile)].empty();
}

common::Word DynamicNetwork::pop_eject(int tile) {
  return eject_[static_cast<std::size_t>(tile)].pop();
}

std::size_t DynamicNetwork::eject_size(int tile) const {
  return eject_[static_cast<std::size_t>(tile)].size();
}

common::Word DynamicNetwork::peek_eject(int tile, std::size_t i) const {
  return eject_[static_cast<std::size_t>(tile)].peek(i);
}

std::size_t DynamicNetwork::route_output(int tile, common::Word header) const {
  const TileCoord here = shape_.coord(tile);
  const TileCoord dest = shape_.coord(dyn_header_dest(header));
  RAW_ASSERT_MSG(shape_.contains(dest), "dynamic message to off-chip tile");
  // X-first dimension order.
  if (dest.col > here.col) return static_cast<std::size_t>(Dir::kEast);
  if (dest.col < here.col) return static_cast<std::size_t>(Dir::kWest);
  if (dest.row > here.row) return static_cast<std::size_t>(Dir::kSouth);
  if (dest.row < here.row) return static_cast<std::size_t>(Dir::kNorth);
  return kEjectPort;
}

Channel* DynamicNetwork::in_link(int tile, std::size_t input) const {
  RAW_ASSERT(input < 4);
  const Dir d = static_cast<Dir>(input);
  const TileCoord n = GridShape::neighbor(shape_.coord(tile), d);
  if (!shape_.contains(n)) return nullptr;
  // Flits flowing into `tile` from direction d travel on the neighbour's
  // link pointing back at us.
  return links_[static_cast<std::size_t>(shape_.index(n))]
               [static_cast<std::size_t>(opposite(d))]
                   .get();
}

Channel* DynamicNetwork::out_link(int tile, std::size_t output) const {
  RAW_ASSERT(output < 4);
  return links_[static_cast<std::size_t>(tile)][output].get();
}

void DynamicNetwork::step() {
  // Quiescence early-out: with nothing in flight no input port has a head
  // flit, so every arbitration below would fail without side effects (the
  // round-robin pointers only advance when an input is chosen).
  if (net_words_ == 0) return;
  for (int t = 0; t < shape_.num_tiles(); ++t) {
    Router& r = routers_[static_cast<std::size_t>(t)];
    for (std::size_t o = 0; o < kNumOutputs; ++o) {
      // Pick the sending input: a locked worm continues; otherwise arbitrate
      // round-robin among inputs whose head flit is a header routed to o.
      std::optional<std::size_t> chosen = r.locked_input[o];
      if (!chosen.has_value()) {
        for (std::size_t k = 0; k < kNumInputs; ++k) {
          const std::size_t i = (r.rr[o] + k) % kNumInputs;
          if (r.locked_output[i].has_value()) continue;  // busy with a worm
          common::Word head = 0;
          if (i == kInjectPort) {
            auto& q = inject_[static_cast<std::size_t>(t)];
            if (q.empty()) continue;
            head = q.front();
          } else {
            Channel* ch = in_link(t, i);
            if (ch == nullptr || !ch->can_read()) continue;
            head = ch->front();
          }
          if (route_output(t, head) != o) continue;
          chosen = i;
          r.rr[o] = (i + 1) % kNumInputs;
          break;
        }
      }
      if (!chosen.has_value()) continue;
      const std::size_t i = *chosen;

      // Source word available this cycle?
      common::Word word = 0;
      bool src_ready = false;
      if (i == kInjectPort) {
        src_ready = !inject_[static_cast<std::size_t>(t)].empty();
        if (src_ready) word = inject_[static_cast<std::size_t>(t)].front();
      } else {
        Channel* ch = in_link(t, i);
        src_ready = ch != nullptr && ch->can_read();
        if (src_ready) word = ch->front();
      }
      if (!src_ready) continue;

      // Destination space available?
      if (o == kEjectPort) {
        if (eject_[static_cast<std::size_t>(t)].full()) continue;
      } else {
        Channel* ch = out_link(t, o);
        RAW_ASSERT_MSG(ch != nullptr, "dimension-ordered route fell off the mesh");
        if (!ch->can_write()) continue;
      }

      // Transfer one flit.
      if (i == kInjectPort) {
        inject_[static_cast<std::size_t>(t)].pop();
      } else {
        (void)in_link(t, i)->read();
      }
      if (o == kEjectPort) {
        eject_[static_cast<std::size_t>(t)].push(word);
        --net_words_;
      } else {
        out_link(t, o)->write(word);
      }
      ++flits_routed_;

      const bool was_header = !r.locked_output[i].has_value();
      if (was_header) {
        r.flits_left[i] = dyn_header_len(word);
        if (r.flits_left[i] > 0) {
          r.locked_output[i] = o;
          r.locked_input[o] = i;
        } else if (o == kEjectPort) {
          ++messages_delivered_;
        }
      } else {
        RAW_ASSERT(r.flits_left[i] > 0);
        if (--r.flits_left[i] == 0) {
          r.locked_output[i].reset();
          r.locked_input[o].reset();
          if (o == kEjectPort) ++messages_delivered_;
        }
      }
    }
  }
}

void DynamicNetwork::step_standalone() {
  for (Channel* ch : all_channels()) ch->begin_cycle();
  step();
  for (Channel* ch : all_channels()) ch->end_cycle();
}

std::uint64_t DynamicNetwork::reset() {
  std::uint64_t dropped = net_words_;
  for (auto& q : inject_) q.clear();
  for (auto& q : eject_) {
    dropped += q.size();  // ejected but not yet consumed by the tile
    q.clear();
  }
  for (Router& r : routers_) r = Router{};
  for (auto& per_tile : links_) {
    for (auto& ch : per_tile) {
      if (ch != nullptr) ch->reset_contents();
    }
  }
  net_words_ = 0;
  return dropped;
}

std::vector<Channel*> DynamicNetwork::all_channels() {
  std::vector<Channel*> out;
  for (auto& per_tile : links_) {
    for (auto& ch : per_tile) {
      if (ch != nullptr) out.push_back(ch.get());
    }
  }
  return out;
}

}  // namespace raw::sim
