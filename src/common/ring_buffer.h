// Fixed-capacity single-threaded ring buffer used for network FIFOs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace raw::common {

/// Bounded FIFO with O(1) push/pop. Capacity is fixed at construction;
/// pushing into a full buffer or popping an empty one is a hard error, so
/// callers must check `full()` / `empty()` first (this mirrors the hardware
/// flow-control discipline of the Raw network FIFOs).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity) {
    RAW_ASSERT_MSG(capacity > 0, "ring buffer capacity must be positive");
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t free_space() const { return slots_.size() - size_; }

  void push(T value) {
    RAW_ASSERT_MSG(!full(), "push into full ring buffer");
    slots_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
  }

  /// Bulk push of `n` values from `src`. The batched-quantum engine drains a
  /// whole quantum of deferred boundary words in one call, so for trivially
  /// copyable element types this is a word-batch memcpy into at most two
  /// contiguous segments instead of n modulo-stepped pushes.
  void push_n(const T* src, std::size_t n) {
    RAW_ASSERT_MSG(n <= free_space(), "bulk push past ring buffer capacity");
    if (n == 0) return;
    if constexpr (std::is_trivially_copyable_v<T>) {
      const std::size_t first = std::min(n, slots_.size() - tail_);
      std::memcpy(slots_.data() + tail_, src, first * sizeof(T));
      std::memcpy(slots_.data(), src + first, (n - first) * sizeof(T));
      tail_ = (tail_ + n) % slots_.size();
      size_ += n;
    } else {
      for (std::size_t i = 0; i < n; ++i) push(src[i]);
    }
  }

  T pop() {
    RAW_ASSERT_MSG(!empty(), "pop from empty ring buffer");
    T value = std::move(slots_[head_]);
    head_ = next(head_);
    --size_;
    return value;
  }

  [[nodiscard]] const T& front() const {
    RAW_ASSERT_MSG(!empty(), "front of empty ring buffer");
    return slots_[head_];
  }

  /// Mutable front, for in-place corruption by the fault injector.
  [[nodiscard]] T& front() {
    RAW_ASSERT_MSG(!empty(), "front of empty ring buffer");
    return slots_[head_];
  }

  /// Element `i` positions behind the front (0 == front). Used by the
  /// wormhole router to peek at header words without consuming them.
  [[nodiscard]] const T& peek(std::size_t i) const {
    RAW_ASSERT_MSG(i < size_, "peek past end of ring buffer");
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) % slots_.size();
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace raw::common
