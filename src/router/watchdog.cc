#include "router/watchdog.h"

#include <cstdio>

#include "router/layout.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"

namespace raw::router {

const char* stall_cause_name(StallReport::Cause c) {
  switch (c) {
    case StallReport::Cause::kNoForwardProgress: return "no_forward_progress";
    case StallReport::Cause::kPortStarvation: return "port_starvation";
  }
  return "?";
}

const char* block_cause_name(StallReport::BlockCause c) {
  switch (c) {
    case StallReport::BlockCause::kFrozen: return "frozen";
    case StallReport::BlockCause::kBlockedRecv: return "blocked_recv";
    case StallReport::BlockCause::kBlockedSend: return "blocked_send";
    case StallReport::BlockCause::kBlockedMem: return "blocked_mem";
    case StallReport::BlockCause::kBusy: return "busy";
    case StallReport::BlockCause::kIdle: return "idle";
  }
  return "?";
}

namespace {

StallReport::BlockCause block_cause_of(sim::AgentState s) {
  switch (s) {
    case sim::AgentState::kBusy: return StallReport::BlockCause::kBusy;
    case sim::AgentState::kBlockedRecv: return StallReport::BlockCause::kBlockedRecv;
    case sim::AgentState::kBlockedSend: return StallReport::BlockCause::kBlockedSend;
    case sim::AgentState::kBlockedMem: return StallReport::BlockCause::kBlockedMem;
    case sim::AgentState::kIdle: return StallReport::BlockCause::kIdle;
  }
  return StallReport::BlockCause::kIdle;
}

std::string role_of(const Layout& layout, int tile) {
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles& t = layout.port(p);
    if (tile == t.ingress) return "In" + std::to_string(p);
    if (tile == t.lookup) return "Lookup" + std::to_string(p);
    if (tile == t.crossbar) return "Xbar" + std::to_string(p);
    if (tile == t.egress) return "Eg" + std::to_string(p);
  }
  return "?";
}

}  // namespace

StallReport build_stall_report(const sim::Chip& chip, const Layout& layout,
                               StallReport::Cause cause,
                               std::uint64_t queued_packets) {
  StallReport report;
  report.cause = cause;
  report.detected_cycle = chip.cycle();
  report.last_progress_cycle = chip.last_progress_cycle();
  report.queued_packets = queued_packets;

  const sim::FaultPlan* faults = chip.fault_plan();
  for (int t = 0; t < chip.num_tiles(); ++t) {
    const sim::Tile& tile = chip.tile(t);
    const sim::SwitchProcessor& sw = tile.switch_proc();
    StallReport::TileState ts;
    ts.tile = t;
    ts.coord = tile.coord();
    ts.role = role_of(layout, t);
    ts.switch_pc = sw.pc();
    if (faults != nullptr && faults->tile_frozen(t)) {
      ts.cause = StallReport::BlockCause::kFrozen;
    } else {
      ts.cause = block_cause_of(sw.last_state());
      if (sw.last_block_channel() != nullptr) {
        ts.channel = sw.last_block_channel()->name();
      }
    }
    if (ts.cause == StallReport::BlockCause::kIdle) continue;
    report.tiles.push_back(std::move(ts));
  }
  return report;
}

std::string StallReport::to_string() const {
  std::string s = "StallReport{" + std::string(stall_cause_name(cause)) +
                  " at cycle " + std::to_string(detected_cycle) +
                  ", last progress " + std::to_string(last_progress_cycle) +
                  ", " + std::to_string(queued_packets) + " packets queued";
  for (const int p : starved_ports) {
    s += ", port" + std::to_string(p) + " starved";
  }
  s += "}";
  for (const TileState& t : tiles) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "\n  tile %2d (row %d, col %d) %-8s %-12s pc=%zu %s", t.tile,
                  t.coord.row, t.coord.col, t.role.c_str(),
                  block_cause_name(t.cause), t.switch_pc, t.channel.c_str());
    s += line;
  }
  return s;
}

}  // namespace raw::router
