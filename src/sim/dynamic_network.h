// Wormhole-routed, dimension-ordered dynamic network (§3.3).
//
// Messages are a header word followed by up to 31 payload words. The header
// encodes the destination tile and payload length; routing is X-first
// dimension order, so the network is deadlock-free for any traffic. A worm
// locks each router output it acquires until its tail flit passes, exactly
// like the hardware; one flit crosses each link per cycle.
//
// The Raw router design in this repository does not switch packets over the
// dynamic network (the whole point of the thesis is that the *static*
// network can do it faster); the dynamic network exists because the
// architecture has one — it carries cache-miss/memory traffic and is used by
// the non-blocking-memory future-work example (§8.2).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "sim/channel.h"
#include "sim/coords.h"

namespace raw::sim {

/// Maximum payload words per dynamic message (§3.3: up to 32 words
/// including the header).
inline constexpr std::uint32_t kMaxDynPayloadWords = 31;

/// Header word layout: [31:16] source tile, [15:8] destination tile,
/// [7:0] payload length.
common::Word make_dyn_header(int src_tile, int dest_tile, std::uint32_t payload_words);
int dyn_header_src(common::Word header);
int dyn_header_dest(common::Word header);
std::uint32_t dyn_header_len(common::Word header);

class DynamicNetwork {
 public:
  explicit DynamicNetwork(GridShape shape, std::size_t endpoint_queue_words = 64);

  [[nodiscard]] GridShape shape() const { return shape_; }

  /// Injection from a tile processor. The whole message must fit in the
  /// tile's inject queue at once (the hardware blocks the processor
  /// otherwise; callers poll can_inject and retry next cycle).
  [[nodiscard]] bool can_inject(int tile, std::uint32_t payload_words) const;
  void inject(int tile, int dest_tile, std::span<const common::Word> payload);

  /// Ejection at the destination tile, word at a time (header first).
  [[nodiscard]] bool has_eject(int tile) const;
  [[nodiscard]] common::Word pop_eject(int tile);

  /// Words currently queued at a tile's eject port, and a non-consuming
  /// look at the i-th of them (for whole-message readiness checks).
  [[nodiscard]] std::size_t eject_size(int tile) const;
  [[nodiscard]] common::Word peek_eject(int tile, std::size_t i) const;

  /// Advances all routers by one cycle. The chip calls this inside its own
  /// channel begin/end phases; standalone users call step() directly.
  void step();

  /// Standalone cycle driver (begin/end the internal link channels too).
  void step_standalone();

  [[nodiscard]] std::uint64_t flits_routed() const { return flits_routed_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return messages_delivered_; }

  /// Words injected but not yet ejected — the network's in-flight load.
  /// step() is a provable no-op while this is zero (no head flit exists to
  /// arbitrate, so even the round-robin pointers hold still), which lets the
  /// chip skip the whole router sweep on quiet cycles.
  [[nodiscard]] std::uint64_t words_in_flight() const { return net_words_; }

  /// Internal link channels, exposed so the chip can include them in its
  /// two-phase cycle driving.
  [[nodiscard]] std::vector<Channel*> all_channels();

  /// Recovery reset (fault-adaptive reconfiguration): discards every queued
  /// and in-flight word — inject/eject queues, link channels, worm locks,
  /// arbitration pointers. Returns the number of words dropped. Cumulative
  /// counters survive.
  std::uint64_t reset();

 private:
  // Per-router input ports: the four mesh directions plus local injection.
  static constexpr std::size_t kNumInputs = 5;   // N,S,E,W,Inject
  static constexpr std::size_t kNumOutputs = 5;  // N,S,E,W,Eject
  static constexpr std::size_t kEjectPort = 4;
  static constexpr std::size_t kInjectPort = 4;

  struct Router {
    // locked_output[i]: output currently owned by input i's worm, if any.
    std::array<std::optional<std::size_t>, kNumInputs> locked_output{};
    std::array<std::uint32_t, kNumInputs> flits_left{};
    // locked_input[o]: input currently owning output o, if any.
    std::array<std::optional<std::size_t>, kNumOutputs> locked_input{};
    // Round-robin arbitration pointer per output.
    std::array<std::size_t, kNumOutputs> rr{};
  };

  [[nodiscard]] std::size_t route_output(int tile, common::Word header) const;
  [[nodiscard]] Channel* in_link(int tile, std::size_t input) const;
  [[nodiscard]] Channel* out_link(int tile, std::size_t output) const;

  GridShape shape_;
  std::vector<Router> routers_;
  // links_[tile][dir]: channel carrying flits *out of* `tile` toward dir.
  std::vector<std::array<std::unique_ptr<Channel>, 4>> links_;
  std::vector<common::RingBuffer<common::Word>> inject_;
  std::vector<common::RingBuffer<common::Word>> eject_;
  std::uint64_t flits_routed_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t net_words_ = 0;
};

}  // namespace raw::sim
