#include "common/ring_buffer.h"

#include <string>

#include <gtest/gtest.h>

namespace raw::common {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.free_space(), 4u);
}

TEST(RingBufferTest, PushPopFifoOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, WrapsAroundManyTimes) {
  RingBuffer<int> rb(2);
  for (int i = 0; i < 1000; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.front(), i);
    EXPECT_EQ(rb.pop(), i);
  }
}

TEST(RingBufferTest, PeekDoesNotConsume) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.peek(0), 10);
  EXPECT_EQ(rb.peek(1), 20);
  EXPECT_EQ(rb.peek(2), 30);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.pop(), 10);
  EXPECT_EQ(rb.peek(0), 20);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(7);
  EXPECT_EQ(rb.pop(), 7);
}

TEST(RingBufferTest, PushNMatchesSequentialPushes) {
  RingBuffer<int> rb(8);
  const int batch[5] = {1, 2, 3, 4, 5};
  rb.push_n(batch, 5);
  EXPECT_EQ(rb.size(), 5u);
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(rb.pop(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, PushNZeroIsNoop) {
  RingBuffer<int> rb(2);
  rb.push(9);
  rb.push_n(nullptr, 0);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.pop(), 9);
}

// Bulk pushes landing across the wrap point must split into two memcpy
// segments; interleave with pops so every tail offset is exercised.
TEST(RingBufferTest, PushNWrapsAcrossTheSeam) {
  RingBuffer<int> rb(5);
  int next = 0, expect = 0;
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = rb.free_space() < 3 ? rb.free_space() : 3;
    int batch[3];
    for (std::size_t i = 0; i < n; ++i) batch[i] = next++;
    rb.push_n(batch, n);
    while (rb.size() > 1) EXPECT_EQ(rb.pop(), expect++);
  }
  while (!rb.empty()) EXPECT_EQ(rb.pop(), expect++);
  EXPECT_EQ(expect, next);
}

// Non-trivially-copyable element types take the per-element fallback and
// must behave identically.
TEST(RingBufferTest, PushNNonTrivialFallback) {
  RingBuffer<std::string> rb(3);
  const std::string batch[2] = {"alpha", "bravo"};
  rb.push_n(batch, 2);
  rb.push("charlie");
  EXPECT_EQ(rb.pop(), "alpha");
  const std::string more[2] = {"delta", "echo"};
  rb.push_n(more, 1);
  EXPECT_EQ(rb.pop(), "bravo");
  EXPECT_EQ(rb.pop(), "charlie");
  EXPECT_EQ(rb.pop(), "delta");
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferDeathTest, PushNPastCapacityAborts) {
  RingBuffer<int> rb(2);
  rb.push(1);
  const int batch[2] = {2, 3};
  EXPECT_DEATH(rb.push_n(batch, 2), "bulk push past ring buffer capacity");
}

TEST(RingBufferDeathTest, PushFullAborts) {
  RingBuffer<int> rb(1);
  rb.push(1);
  EXPECT_DEATH(rb.push(2), "full ring buffer");
}

TEST(RingBufferDeathTest, PopEmptyAborts) {
  RingBuffer<int> rb(1);
  EXPECT_DEATH((void)rb.pop(), "empty ring buffer");
}

}  // namespace
}  // namespace raw::common
