#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace raw::common {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(123);
  std::array<int, 4> counts{};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(4)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 4, kDraws / 40);  // within 10% of expectation
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(13);
  // Mean of failures-before-success is (1-p)/p.
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / kDraws, (1.0 - p) / p, 0.1);
}

TEST(RngTest, Permutation4IsPermutation) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const auto perm = rng.permutation4();
    std::array<bool, 4> seen{};
    for (const auto v : perm) {
      ASSERT_LT(v, 4);
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(RngTest, Permutation4CoversAll24) {
  Rng rng(19);
  std::vector<int> seen(256, 0);
  int distinct = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto perm = rng.permutation4();
    const int key = perm[0] | perm[1] << 2 | perm[2] << 4 | perm[3] << 6;
    if (seen[static_cast<std::size_t>(key)]++ == 0) ++distinct;
  }
  EXPECT_EQ(distinct, 24);
}

}  // namespace
}  // namespace raw::common
