file(REMOVE_RECURSE
  "librawcommon.a"
)
