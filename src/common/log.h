// Minimal leveled logger. Simulation hot paths never log; this exists for
// tooling and debugging of the schedule compiler and tile programs.
#pragma once

#include <string>

namespace raw::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// tests and benches stay quiet, unless the RAW_LOG_LEVEL environment
/// variable overrides it at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive) or
/// a numeric level 0..4; anything else yields `fallback`.
LogLevel parse_log_level(const char* value, LogLevel fallback);

/// Re-reads RAW_LOG_LEVEL and applies it (no-op when unset or unparsable).
/// Called once automatically before the first log-level access; exposed so
/// tests and long-lived tools can re-apply an environment change.
void set_log_level_from_env();

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace raw::common
