#include "exec/partition.h"

#include <algorithm>
#include <cstdlib>

#include "common/assert.h"
#include "sim/chip.h"

namespace raw::exec {

Partition Partition::build(sim::GridShape shape, std::size_t num_channels,
                           int workers) {
  const int tiles = shape.num_tiles();
  RAW_ASSERT_MSG(tiles > 0, "cannot partition an empty grid");
  const int n = std::clamp(workers, 1, tiles);

  Partition p;
  p.stripes_.resize(static_cast<std::size_t>(n));

  if (n <= shape.rows) {
    // Row-aligned stripes: rows/n whole rows each, the first rows%n stripes
    // taking one extra row.
    const int base = shape.rows / n;
    const int extra = shape.rows % n;
    int row = 0;
    for (int w = 0; w < n; ++w) {
      const int take = base + (w < extra ? 1 : 0);
      Stripe& s = p.stripes_[static_cast<std::size_t>(w)];
      s.tile_begin = row * shape.cols;
      s.tile_end = (row + take) * shape.cols;
      row += take;
    }
  } else {
    // More workers than rows: contiguous tile ranges balanced by count.
    const int base = tiles / n;
    const int extra = tiles % n;
    int tile = 0;
    for (int w = 0; w < n; ++w) {
      const int take = base + (w < extra ? 1 : 0);
      Stripe& s = p.stripes_[static_cast<std::size_t>(w)];
      s.tile_begin = tile;
      s.tile_end = tile + take;
      tile += take;
    }
  }

  // Channels: plain even split, independent of tile ownership.
  const std::size_t cbase = num_channels / static_cast<std::size_t>(n);
  const std::size_t cextra = num_channels % static_cast<std::size_t>(n);
  std::size_t chan = 0;
  for (int w = 0; w < n; ++w) {
    const std::size_t take = cbase + (static_cast<std::size_t>(w) < cextra ? 1 : 0);
    Stripe& s = p.stripes_[static_cast<std::size_t>(w)];
    s.chan_begin = chan;
    s.chan_end = chan + take;
    chan += take;
  }
  return p;
}

Partition Partition::build(const sim::Chip& chip, int workers) {
  return build(chip.shape(), chip.all_channels().size(), workers);
}

int Partition::worker_of(int tile) const {
  for (int w = 0; w < workers(); ++w) {
    const Stripe& s = stripes_[static_cast<std::size_t>(w)];
    if (tile >= s.tile_begin && tile < s.tile_end) return w;
  }
  RAW_UNREACHABLE("tile outside every stripe");
}

common::Cycle derived_lookahead(const std::vector<BoundaryLink>& links,
                                common::Cycle idle_default) {
  if (links.empty()) return idle_default;
  common::Cycle k = ~common::Cycle{0};
  for (const BoundaryLink& b : links) {
    k = std::min(k, static_cast<common::Cycle>(b.ch->capacity() / 2));
  }
  return std::max<common::Cycle>(k, 1);
}

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("RAWSIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  return 1;
}

}  // namespace raw::exec
