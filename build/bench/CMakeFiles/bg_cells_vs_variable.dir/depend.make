# Empty dependencies file for bg_cells_vs_variable.
# This may be replaced when dependencies are built.
