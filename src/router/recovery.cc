#include "router/recovery.h"

#include <algorithm>
#include <span>

#include "common/assert.h"
#include "net/ipv4.h"
#include "sim/chip.h"
#include "sim/dynamic_network.h"
#include "sim/switch_isa.h"
#include "sim/tile_task.h"

namespace raw::router {
namespace {

using common::Word;
using sim::TileTask;
using sim::task::delay;
using sim::task::mem_delay;
using sim::task::read;
using sim::task::write;

constexpr Word kNoRoute = 0xffffffffu;

// Degraded switch programs are one-instruction forward loops: a kJump back to
// itself carrying a single route. The move fires on every cycle where the
// source has a word and the destination has space, and stalls (with no side
// effects) otherwise, so the switch needs no flow-control code at all.
std::shared_ptr<const sim::SwitchProgram> forward_loop(sim::Dir src,
                                                       sim::Dir dst) {
  sim::SwitchInstr instr;
  instr.op = sim::CtrlOp::kJump;
  instr.imm = 0;
  instr.moves.push_back(sim::Move{.net = 0, .src = src, .dst = dst});
  return std::make_shared<const sim::SwitchProgram>(
      std::vector<sim::SwitchInstr>{instr});
}

std::shared_ptr<const sim::SwitchProgram> halt_program() {
  sim::SwitchInstr halt;
  halt.op = sim::CtrlOp::kHalt;
  return std::make_shared<const sim::SwitchProgram>(
      std::vector<sim::SwitchInstr>{halt});
}

// Degraded ingress: the tile's switch autonomously forwards every line word
// to $csti, so the program just consumes the stream — validate a header
// (sliding one word at a time to realign after corruption, like the normal
// ingress), look the route up *locally* (the lookup tile may be the dead
// one), and stream the packet to the destination port's egress tile as
// dynamic-network chunks. The hardware dyn routers do the actual switching,
// which is what makes this immune to frozen switch programs along the way.
TileTask degraded_ingress_body(RouterCore& core, int port,
                               std::array<bool, kNumPorts> tx_live) {
  sim::Chip& chip = *core.chip;
  const PortTiles tiles = core.layout->port(port);
  sim::Channel& csti = chip.tile(tiles.ingress).csti(0);
  sim::DynamicNetwork* dyn = chip.dynamic_network();
  RAW_ASSERT_MSG(dyn != nullptr, "degraded fabric needs the dynamic network");
  PortCounters& ctr = core.counters[static_cast<std::size_t>(port)];

  std::array<Word, net::Ipv4Header::kWords> win{};
  std::size_t held = 0;
  bool aligned = true;  // false while hunting for a header after corruption
  std::vector<Word> pkt;

  for (;;) {
    while (held < net::Ipv4Header::kWords) win[held++] = co_await read(csti);

    net::Ipv4Header hdr = net::parse(win);
    if (hdr.version != 4 || hdr.ihl != 5 ||
        hdr.total_length < net::Ipv4Header::kBytes || !net::checksum_ok(hdr)) {
      co_await delay(core.config.header_proc_cost);  // checksum verify
      if (aligned) {
        ++ctr.malformed_drops;
        if (core.ledger != nullptr) {
          (void)core.ledger->erase_in_flight_ingress(uid_of(hdr));
        }
      } else {
        ++ctr.resync_slides;
      }
      aligned = false;
      for (std::size_t i = 1; i < win.size(); ++i) win[i - 1] = win[i];
      held = net::Ipv4Header::kWords - 1;
      continue;
    }
    aligned = true;
    held = 0;

    co_await delay(core.config.header_proc_cost);  // checksum verify + TTL
    ++ctr.packets_in;
    const bool tracing = core.tracer != nullptr && core.tracer->enabled();
    const std::uint64_t trace_uid = tracing ? uid_of(hdr) : 0;
    if (tracing) {
      core.tracer->record(trace_uid, chip.cycle(),
                          common::PacketEvent::kEnterChip, tiles.ingress);
    }

    const std::uint32_t total_words =
        static_cast<std::uint32_t>(common::words_for_bytes(hdr.total_length));
    const auto payload_words =
        static_cast<std::uint32_t>(total_words - net::Ipv4Header::kWords);

    bool drop = false;
    if (!net::decrement_ttl(hdr)) {
      ++ctr.ttl_drops;
      drop = true;
    }

    Word out_port = kNoRoute;
    if (!drop) {
      // Local lookup on the ingress tile (the port's lookup tile may be the
      // dead one), with the same modelled table-access cost.
      const auto result = core.forwarding->lookup(hdr.dst);
      const unsigned lines = result.has_value()
                                 ? static_cast<unsigned>(result->accesses)
                                 : core.config.lookup_lines;
      co_await mem_delay(core.config.memory.table_access_cost(
          lines, core.config.lookup_miss_ratio));
      ++ctr.lookups;
      out_port = result.has_value() ? static_cast<Word>(result->value) : kNoRoute;
      if (tracing) {
        core.tracer->record(trace_uid, chip.cycle(),
                            common::PacketEvent::kLookupDone, tiles.ingress,
                            out_port);
      }
      if (out_port == kNoRoute) {
        ++ctr.no_route_drops;
        drop = true;
      }
    }
    if (!drop && !tx_live[out_port]) {
      ++ctr.dead_port_drops;  // destination egress tile died
      drop = true;
    }

    if (drop) {
      // Validated header, trusted length: consume and discard the payload
      // still arriving, and release the ledger entry.
      if (core.ledger != nullptr) {
        (void)core.ledger->erase_in_flight_ingress(uid_of(hdr));
      }
      for (std::uint32_t i = 0; i < payload_words; ++i) {
        (void)co_await read(csti);
      }
      continue;
    }

    pkt.clear();
    const auto hdr_words = net::serialize(hdr);
    pkt.assign(hdr_words.begin(), hdr_words.end());
    for (std::uint32_t i = 0; i < payload_words; ++i) {
      pkt.push_back(co_await read(csti));
    }

    const int dest_tile = core.layout->port(static_cast<int>(out_port)).egress;
    std::size_t sent = 0;
    while (sent < pkt.size()) {
      const auto chunk = static_cast<std::uint32_t>(std::min<std::size_t>(
          sim::kMaxDynPayloadWords, pkt.size() - sent));
      while (!dyn->can_inject(tiles.ingress, chunk)) co_await delay(1);
      dyn->inject(tiles.ingress, dest_tile,
                  std::span<const Word>(pkt.data() + sent, chunk));
      ++ctr.fragments;
      sent += chunk;
    }
    // One "grant" per packet forwarded: the starvation watchdog keys on
    // per-port grant counts, and a degraded port that moves packets is by
    // definition not starved.
    ++ctr.grants;
  }
}

// Degraded egress: reassembles dynamic-network chunks per source port (a
// worm delivers contiguously, so the `len` words after a header word belong
// to that chunk; chunks from one source arrive in order on the fixed
// dimension-ordered path) and emits only whole packets to $csto, which the
// forward-loop switch drains to the output line card. Buffering charges the
// usual two cycles a word (store + load, §4.4).
TileTask degraded_egress_body(RouterCore& core, int port) {
  sim::Chip& chip = *core.chip;
  const PortTiles tiles = core.layout->port(port);
  sim::Channel& csto = chip.tile(tiles.egress).csto(0);
  sim::DynamicNetwork* dyn = chip.dynamic_network();
  RAW_ASSERT_MSG(dyn != nullptr, "degraded fabric needs the dynamic network");
  PortCounters& ctr = core.counters[static_cast<std::size_t>(port)];

  std::array<std::vector<Word>, kNumPorts> reassembly;
  std::size_t buffered_words = 0;

  for (;;) {
    if (!dyn->has_eject(tiles.egress)) {
      co_await delay(1);
      continue;
    }
    const Word header = dyn->pop_eject(tiles.egress);
    const int src_tile = sim::dyn_header_src(header);
    const std::uint32_t len = sim::dyn_header_len(header);
    int src_port = -1;
    for (int p = 0; p < kNumPorts; ++p) {
      if (core.layout->port(p).ingress == src_tile) src_port = p;
    }
    RAW_ASSERT_MSG(src_port >= 0,
                   "degraded egress: chunk from a non-ingress tile");
    auto& buf = reassembly[static_cast<std::size_t>(src_port)];
    for (std::uint32_t i = 0; i < len; ++i) {
      while (!dyn->has_eject(tiles.egress)) co_await delay(1);
      buf.push_back(dyn->pop_eject(tiles.egress));
      co_await delay(1);  // store into dmem
      ++buffered_words;
    }
    RAW_ASSERT_MSG(buffered_words <= sim::kTileDmemWords,
                   "degraded reassembly exceeds tile data memory");

    // Emit every complete packet at the front of this source's buffer. The
    // header was validated at the degraded ingress, so its length is
    // trusted; the structural re-check only guards against a logic slip
    // upstream (payload corruption passes through and is caught by the
    // output card's end-to-end validation).
    while (buf.size() >= net::Ipv4Header::kWords) {
      const net::Ipv4Header hdr =
          net::parse(std::span<const Word, net::Ipv4Header::kWords>(
              buf.data(), net::Ipv4Header::kWords));
      if (hdr.version != 4 || hdr.ihl != 5 ||
          hdr.total_length < net::Ipv4Header::kBytes) {
        ++ctr.resync_slides;
        buf.erase(buf.begin());
        --buffered_words;
        continue;
      }
      const std::size_t total = common::words_for_bytes(hdr.total_length);
      if (buf.size() < total) break;
      for (std::size_t i = 0; i < total; ++i) {
        co_await delay(1);  // load from dmem
        co_await write(csto, buf[i]);
      }
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
      buffered_words -= total;
      ++ctr.cut_through;
    }
  }
}

}  // namespace

std::string RecoveryReport::to_string() const {
  // Sequential appends: GCC 12 -Wrestrict false-positives on
  // operator+(const char*, std::string&&) chains (see config_space.cc).
  std::string s = "recovery gen ";
  s += std::to_string(generation);
  s += " @";
  s += std::to_string(reconfigured_at);
  s += " dead=[";
  for (std::size_t i = 0; i < dead_tiles.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(dead_tiles[i]);
  }
  s += "] lost_rx=";
  s += std::to_string(lost_rx_ports.size());
  s += " lost_tx=";
  s += std::to_string(lost_tx_ports.size());
  s += " written_off=";
  s += std::to_string(written_off);
  return s;
}

RecoveryReport reconfigure_degraded(
    RouterCore& core, PacketLedger& ledger,
    std::array<std::unique_ptr<InputLineCard>, kNumPorts>& inputs,
    std::array<std::unique_ptr<OutputLineCard>, kNumPorts>& outputs,
    const std::vector<int>& dead, int generation) {
  sim::Chip& chip = *core.chip;
  RAW_ASSERT_MSG(!dead.empty(), "reconfigure_degraded with no dead tiles");

  RecoveryReport report;
  report.generation = generation;
  report.reconfigured_at = chip.cycle();
  report.dead_tiles = dead;
  for (const auto& out : outputs) {
    report.delivered_at_reconfigure += out->delivered_packets();
  }

  const auto is_dead = [&dead](int t) {
    return std::find(dead.begin(), dead.end(), t) != dead.end();
  };
  std::array<bool, kNumPorts> rx_live{};
  std::array<bool, kNumPorts> tx_live{};
  for (int p = 0; p < kNumPorts; ++p) {
    rx_live[static_cast<std::size_t>(p)] = !is_dead(core.layout->port(p).ingress);
    tx_live[static_cast<std::size_t>(p)] = !is_dead(core.layout->port(p).egress);
    if (!rx_live[static_cast<std::size_t>(p)]) report.lost_rx_ports.push_back(p);
    if (!tx_live[static_cast<std::size_t>(p)]) report.lost_tx_ports.push_back(p);
  }

  // 1. Return every parked agent to the runnable set so the engine
  // revalidates everything against the rebuilt state.
  chip.prepare_reconfigure();

  // 2. Unload every tile: coroutines are destroyed, switches land on a halt
  // program (frozen tiles never step again, but their state is inert either
  // way).
  const auto halt = halt_program();
  for (int t = 0; t < chip.num_tiles(); ++t) {
    chip.tile(t).set_program({});
    chip.tile(t).switch_proc().load(halt);
  }

  // 3. Drop every in-flight word: all static channels (links, edge ports,
  // tile FIFOs) and the dynamic network. The words lost here are accounted
  // for by the ledger write-off below.
  for (sim::Channel* ch : chip.all_channels()) ch->reset_contents();
  if (chip.dynamic_network() != nullptr) (void)chip.dynamic_network()->reset();

  // 4. Line-card surgery. Live input ports drop only their torn front packet
  // (its head died in the fabric); dead ones flush entirely and stop
  // arrivals. Every in-flight ledger entry not safely queued at a live input
  // card died with the fabric and is written off as lost.
  std::vector<std::uint64_t> keep;
  for (int p = 0; p < kNumPorts; ++p) {
    InputLineCard& in = *inputs[static_cast<std::size_t>(p)];
    if (rx_live[static_cast<std::size_t>(p)]) {
      report.written_off += in.drop_partial_front();
      in.collect_queued_uids(keep);
    } else {
      report.written_off += in.flush_and_stop();
    }
    outputs[static_cast<std::size_t>(p)]->reset_framing();
  }
  std::sort(keep.begin(), keep.end());
  std::vector<std::uint64_t> doomed;
  for (const auto& [uid, entry] : ledger.in_flight) {
    if (!std::binary_search(keep.begin(), keep.end(), uid)) doomed.push_back(uid);
  }
  for (const std::uint64_t uid : doomed) {
    ledger.in_flight.erase(uid);
    ++ledger.erased_lost;
    ++report.written_off;
  }

  // 5. Install the degraded fabric on the surviving port tiles.
  for (int p = 0; p < kNumPorts; ++p) {
    const PortTiles tiles = core.layout->port(p);
    const PortEdges edges = core.layout->edges(p);
    if (rx_live[static_cast<std::size_t>(p)]) {
      chip.tile(tiles.ingress)
          .switch_proc()
          .load(forward_loop(edges.ingress_edge, sim::Dir::kProc));
      chip.tile(tiles.ingress)
          .set_program(degraded_ingress_body(core, p, tx_live));
    }
    if (tx_live[static_cast<std::size_t>(p)]) {
      chip.tile(tiles.egress)
          .switch_proc()
          .load(forward_loop(sim::Dir::kProc, edges.egress_edge));
      chip.tile(tiles.egress).set_program(degraded_egress_body(core, p));
    }
  }
  return report;
}

}  // namespace raw::router
