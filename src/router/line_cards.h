// Line-card devices attached to the chip-edge ports.
//
// The input card runs an open-loop arrival process from a TrafficGen and
// buffers packets in its (external, §4.4) queue, streaming words into the
// chip at line rate; overflow is dropped at the card, exactly as the thesis
// assumes ("dropping ... occurring externally to the Raw chip"). The output
// card reframes the word stream back into packets, validates them
// end-to-end (checksum, TTL decrement, payload integrity, correct output
// port) and records throughput and latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/trace_event.h"
#include "common/types.h"
#include "net/packet.h"
#include "net/traffic.h"
#include "sim/chip.h"
#include "sim/device.h"

namespace raw::router {

/// Shared bookkeeping between input and output cards (simulation-side only;
/// nothing here is visible to the modelled hardware).
struct PacketLedger {
  struct Entry {
    common::Cycle created = 0;
    int src_port = -1;
    int dst_port = -1;
    common::ByteCount bytes = 0;
  };
  std::unordered_map<std::uint64_t, Entry> in_flight;
  std::uint64_t next_uid = 1;
  /// Optional packet-lifecycle tracer shared by the line cards and the tile
  /// programs (null or disabled: no events, no cost).
  common::PacketTracer* tracer = nullptr;

  /// Where erased entries went, for packet-conservation accounting. Every
  /// erase from `in_flight` increments exactly one of these, so at any
  /// instant
  ///   offered == dropped_at_card + erased_delivered + erased_invalid
  ///            + erased_ingress + erased_lost + in_flight.size()
  /// (RawRouter asserts this at drain).
  std::uint64_t erased_delivered = 0;  // validated at an output card
  std::uint64_t erased_invalid = 0;    // reached an output card, failed validation
  std::uint64_t erased_ingress = 0;    // dropped by an ingress tile (ttl/route/malformed)
  std::uint64_t erased_lost = 0;       // written off when a drain quiesced short

  [[nodiscard]] std::uint64_t erased_total() const {
    return erased_delivered + erased_invalid + erased_ingress + erased_lost;
  }

  /// Records an ingress drop (ttl expiry, no route, malformed header). This
  /// is the only ledger mutation that can happen on a tile-program thread
  /// under the parallel engine, so it takes a mutex; all other mutations
  /// (generation, output-card validation, drain write-off) run in device or
  /// drain phases that the engine keeps serial. Distinct uids erase distinct
  /// map entries, so the final ledger state is independent of the order in
  /// which concurrent drops land. Returns whether the uid was present.
  bool erase_in_flight_ingress(std::uint64_t uid) {
    const std::lock_guard<std::mutex> lock(ingress_mutex);
    const bool present = in_flight.erase(uid) > 0;
    if (present) ++erased_ingress;
    return present;
  }

  // Cluster fabrics share one ledger across chips whose host cards may step
  // on different threads (thread-per-chip mode), so every mutation from a
  // cluster card goes through these locked variants. The final ledger state
  // is independent of thread interleaving: distinct uids touch distinct map
  // entries and the outcome counters are commutative sums.

  void insert_in_flight_locked(std::uint64_t uid, const Entry& e) {
    const std::lock_guard<std::mutex> lock(ingress_mutex);
    in_flight.emplace(uid, e);
  }

  /// Erases `uid` and copies its entry to `out` (when non-null). The caller
  /// must follow up with exactly one credit_* call — validation of the
  /// reassembled frame decides delivered vs invalid only after the entry is
  /// taken. Returns whether the uid was present.
  bool take_in_flight_locked(std::uint64_t uid, Entry* out) {
    const std::lock_guard<std::mutex> lock(ingress_mutex);
    const auto it = in_flight.find(uid);
    if (it == in_flight.end()) return false;
    if (out != nullptr) *out = it->second;
    in_flight.erase(it);
    return true;
  }

  void credit_delivered_locked() {
    const std::lock_guard<std::mutex> lock(ingress_mutex);
    ++erased_delivered;
  }
  void credit_invalid_locked() {
    const std::lock_guard<std::mutex> lock(ingress_mutex);
    ++erased_invalid;
  }
  void credit_lost_locked(std::uint64_t n) {
    const std::lock_guard<std::mutex> lock(ingress_mutex);
    erased_lost += n;
  }

  [[nodiscard]] std::size_t in_flight_size_locked() {
    const std::lock_guard<std::mutex> lock(ingress_mutex);
    return in_flight.size();
  }

  std::mutex ingress_mutex;
};

/// Trace-track ids: chip events use the tile index directly; line-card
/// events get their own per-port tracks above the tile range.
constexpr int input_card_track(int port) { return 100 + port; }
constexpr int output_card_track(int port) { return 200 + port; }

/// Packs the simulator uid into the IPv4 source address + identification so
/// the output card can find the ledger entry: src = 10.(128+port).x.x with
/// the uid's low 16 bits, identification = uid bits [31:16].
net::Packet make_test_packet(std::uint64_t uid, int src_port, int dst_port,
                             common::ByteCount bytes);
std::uint64_t uid_of(const net::Ipv4Header& hdr);
int src_port_of(const net::Ipv4Header& hdr);

/// Reframes a chip-edge word stream back into packets: accumulates words,
/// locks onto a plausible IPv4 header, and — after a torn or corrupted frame
/// — slides forward one word at a time until framing lines up again, so one
/// bad frame costs one resync episode instead of desynchronising every
/// subsequent packet. Shared by OutputLineCard and the cluster host egress
/// card.
class FrameAssembler {
 public:
  /// Feeds one word; returns true when a complete frame is buffered
  /// (consume it with take()).
  bool push(common::Word w);
  /// The completed frame's words (valid only right after push() returned
  /// true).
  [[nodiscard]] std::vector<common::Word> take();
  /// Drops any partially-reassembled frame and realigns on the next header
  /// word (recovery surgery after a fabric reset).
  void reset();

  /// Resynchronisation episodes (framing lost mid-stream).
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  /// Words discarded while realigning.
  [[nodiscard]] std::uint64_t resync_words() const { return resync_words_; }

 private:
  std::vector<common::Word> current_;
  std::size_t expected_words_ = 0;  // 0 = not locked onto a frame yet
  bool in_resync_ = false;
  std::uint64_t resyncs_ = 0;
  std::uint64_t resync_words_ = 0;
};

/// Abstract word endpoints at the chip boundary. A trunk card moves at most
/// one word per cycle between a chip-edge channel and one of these; the
/// cluster fabric implements them on its inter-chip links (latency +
/// token-bucket bandwidth throttling live behind the interface).
class WordTx {
 public:
  virtual ~WordTx() = default;
  /// Whether one more word can be accepted at cycle `now` (bandwidth tokens
  /// and queue space permitting). May refill internal token state.
  [[nodiscard]] virtual bool can_send(common::Cycle now) = 0;
  virtual void send(common::Word w, common::Cycle now) = 0;
};

class WordRx {
 public:
  virtual ~WordRx() = default;
  /// Whether a word has arrived (latency elapsed) by cycle `now`.
  [[nodiscard]] virtual bool has_word(common::Cycle now) = 0;
  [[nodiscard]] virtual common::Word recv(common::Cycle now) = 0;
};

class InputLineCard : public sim::Device {
 public:
  InputLineCard(sim::Channel* to_chip, int port, net::TrafficGen* traffic,
                PacketLedger* ledger, std::size_t queue_capacity_words);

  void step(sim::Chip& chip) override;

  /// Stops generating new packets (drain phase of an experiment).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t offered_packets() const { return offered_packets_; }
  [[nodiscard]] common::ByteCount offered_bytes() const { return offered_bytes_; }
  [[nodiscard]] std::uint64_t dropped_packets() const { return dropped_packets_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Recovery surgery (fault-adaptive reconfiguration, which resets the
  /// fabric): drops the partially-streamed front packet — its already-sent
  /// words died in the fabric reset and the remainder would arrive headless.
  /// The ledger entry is written off as lost. Whole queued packets stay
  /// deliverable. Returns the number of packets written off (0 or 1).
  std::uint64_t drop_partial_front();
  /// Recovery surgery (dead ingress tile): writes off every queued packet as
  /// lost, clears the queue, and stops the arrival process. Returns the
  /// number of packets written off.
  std::uint64_t flush_and_stop();
  /// Appends the uids of every fully-queued packet (call after
  /// drop_partial_front) — the in-flight entries a fabric reset must keep.
  void collect_queued_uids(std::vector<std::uint64_t>& out) const;

 private:
  void generate(sim::Chip& chip);

  sim::Channel* to_chip_;
  int port_;
  net::TrafficGen* traffic_;
  PacketLedger* ledger_;
  std::size_t queue_capacity_words_;
  std::deque<common::Word> queue_;
  // Packet boundaries of `queue_`, for head-of-queue lifecycle events:
  // (uid, total words), oldest first, with the words of the front packet
  // already written to the chip.
  std::deque<std::pair<std::uint64_t, std::uint32_t>> queued_packets_;
  std::uint32_t front_words_sent_ = 0;
  common::Cycle next_arrival_ = 0;
  bool stopped_ = false;
  std::uint64_t offered_packets_ = 0;
  common::ByteCount offered_bytes_ = 0;
  std::uint64_t dropped_packets_ = 0;
};

class OutputLineCard : public sim::Device {
 public:
  OutputLineCard(sim::Channel* from_chip, int port, PacketLedger* ledger);

  void step(sim::Chip& chip) override;

  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] common::ByteCount delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] std::uint64_t delivered_from(int src) const {
    return per_source_[static_cast<std::size_t>(src)];
  }
  /// All frames that failed validation, however they failed.
  [[nodiscard]] std::uint64_t errors() const {
    return dropped_invalid_ + unmatched_frames_;
  }
  /// Frames with a ledger entry that failed end-to-end validation
  /// (corrupted payload, wrong port, bad TTL).
  [[nodiscard]] std::uint64_t dropped_invalid() const { return dropped_invalid_; }
  /// Frames whose uid matched no in-flight entry (a corrupted uid field, or
  /// the surviving half of a torn frame).
  [[nodiscard]] std::uint64_t unmatched_frames() const { return unmatched_frames_; }
  /// Resynchronisation episodes: the card lost framing mid-stream and slid
  /// forward to the next plausible header.
  [[nodiscard]] std::uint64_t resyncs() const { return assembler_.resyncs(); }
  /// Words discarded while realigning.
  [[nodiscard]] std::uint64_t resync_words() const {
    return assembler_.resync_words();
  }
  [[nodiscard]] const common::RunningStat& latency() const { return latency_; }
  /// End-to-end latency distribution (cycles), for p50/p95/p99 reporting.
  [[nodiscard]] const common::Histogram& latency_histogram() const {
    return latency_hist_;
  }

  /// Recovery surgery: drops any partially-reassembled frame and realigns
  /// on the next header word — the words already buffered were severed from
  /// their tail by the fabric reset.
  void reset_framing() { assembler_.reset(); }

 private:
  void finish_packet(sim::Chip& chip);

  sim::Channel* from_chip_;
  int port_;
  PacketLedger* ledger_;
  FrameAssembler assembler_;
  std::uint64_t delivered_packets_ = 0;
  common::ByteCount delivered_bytes_ = 0;
  std::array<std::uint64_t, 4> per_source_{};
  std::uint64_t dropped_invalid_ = 0;
  std::uint64_t unmatched_frames_ = 0;
  common::RunningStat latency_;
  common::Histogram latency_hist_{16.0, 2048};  // covers 32K cycles + overflow
};

/// Chip-edge trunk cards for inter-chip links: word-level cut-through, no
/// reassembly. The egress card drains an output port's channel — one word
/// per cycle, unconditionally, like a host line card — into an elastic
/// store-and-forward FIFO, and trickles that FIFO into the WordTx as the
/// link's tokens and capacity allow. The elasticity is load-bearing: if a
/// throttled or full link backpressured into the fabric, the stalled
/// egress would wedge the chip's whole crossbar ring, the chip would stop
/// draining its *incoming* trunk, and two chips could deadlock each other
/// (classic store-and-forward deadlock). The ingress card feeds arrived
/// words into an input port's channel at at most line rate.
class TrunkEgressCard : public sim::Device {
 public:
  TrunkEgressCard(sim::Channel* from_chip, int port, WordTx* tx);

  void step(sim::Chip& chip) override;

  [[nodiscard]] std::uint64_t words_out() const { return words_out_; }
  /// Words parked in the store-and-forward FIFO awaiting link credit.
  [[nodiscard]] std::size_t queued_words() const { return queue_.size(); }
  [[nodiscard]] std::size_t peak_queued_words() const { return peak_queued_; }

 private:
  sim::Channel* from_chip_;
  int port_;
  WordTx* tx_;
  std::deque<common::Word> queue_;
  std::size_t peak_queued_ = 0;
  std::uint64_t words_out_ = 0;
};

class TrunkIngressCard : public sim::Device {
 public:
  TrunkIngressCard(sim::Channel* to_chip, int port, WordRx* rx);

  void step(sim::Chip& chip) override;

  [[nodiscard]] std::uint64_t words_in() const { return words_in_; }

 private:
  sim::Channel* to_chip_;
  int port_;
  WordRx* rx_;
  std::uint64_t words_in_ = 0;
};

}  // namespace raw::router
