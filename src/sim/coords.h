// Tile coordinates and mesh directions for the Raw grid.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/assert.h"

namespace raw::sim {

/// The four mesh directions plus the tile-processor port. The static switch
/// crossbar routes between any of these five endpoints (§3.3).
enum class Dir : std::uint8_t { kNorth = 0, kSouth = 1, kEast = 2, kWest = 3, kProc = 4 };

inline constexpr std::array<Dir, 4> kMeshDirs = {Dir::kNorth, Dir::kSouth,
                                                 Dir::kEast, Dir::kWest};

constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
    case Dir::kProc: return Dir::kProc;
  }
  RAW_UNREACHABLE("bad Dir");
}

constexpr const char* dir_name(Dir d) {
  switch (d) {
    case Dir::kNorth: return "N";
    case Dir::kSouth: return "S";
    case Dir::kEast: return "E";
    case Dir::kWest: return "W";
    case Dir::kProc: return "P";
  }
  return "?";
}

/// Row-major tile coordinate on an R x C grid.
struct TileCoord {
  int row = 0;
  int col = 0;

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

struct GridShape {
  int rows = 4;
  int cols = 4;

  [[nodiscard]] constexpr int num_tiles() const { return rows * cols; }

  [[nodiscard]] constexpr bool contains(TileCoord c) const {
    return c.row >= 0 && c.row < rows && c.col >= 0 && c.col < cols;
  }

  [[nodiscard]] constexpr int index(TileCoord c) const {
    return c.row * cols + c.col;
  }

  [[nodiscard]] constexpr TileCoord coord(int tile) const {
    return TileCoord{tile / cols, tile % cols};
  }

  /// Neighbour coordinate in direction `d`; may fall outside the grid (edge
  /// links connect to I/O ports there).
  [[nodiscard]] static constexpr TileCoord neighbor(TileCoord c, Dir d) {
    switch (d) {
      case Dir::kNorth: return {c.row - 1, c.col};
      case Dir::kSouth: return {c.row + 1, c.col};
      case Dir::kEast: return {c.row, c.col + 1};
      case Dir::kWest: return {c.row, c.col - 1};
      case Dir::kProc: return c;
    }
    RAW_UNREACHABLE("bad Dir");
  }
};

inline std::string tile_name(int tile) { return "tile" + std::to_string(tile); }

}  // namespace raw::sim
