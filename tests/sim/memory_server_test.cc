#include "sim/memory_server.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/tile_task.h"

namespace raw::sim {
namespace {

using task::delay;

TEST(MemoryServerTest, StoreThenLoadReadsBack) {
  Chip chip;
  MemoryServer server(chip, /*tile=*/0, MemoryModel{}, 1024);
  server.install();

  bool done = false;
  common::Word loaded = 0;
  auto client = [&]() -> TileTask {
    MemClient mem(chip, /*tile=*/15, server.tile());
    while (!mem.can_issue()) co_await delay(1);
    mem.issue_store(1, 100, 0xdeadbeef);
    while (!mem.reply_ready()) co_await delay(1);
    (void)mem.take_reply();  // write acknowledgement
    while (!mem.can_issue()) co_await delay(1);
    mem.issue_load(2, 100);
    while (!mem.reply_ready()) co_await delay(1);
    const auto [tag, data] = mem.take_reply();
    EXPECT_EQ(tag, 2);
    loaded = data;
    done = true;
  };
  chip.tile(15).set_program(client());
  EXPECT_TRUE(chip.run_until([&] { return done; }, 5000));
  EXPECT_EQ(loaded, 0xdeadbeefu);
  EXPECT_EQ(server.loads(), 1u);
  EXPECT_EQ(server.stores(), 1u);
  EXPECT_EQ(server.peek(100), 0xdeadbeefu);
}

TEST(MemoryServerTest, NonBlockingLoadsOverlap) {
  // §8.2's point: issuing N loads back to back costs far less than N
  // sequential round trips because the DRAM accesses pipeline.
  constexpr int kLoads = 8;
  const auto run = [](bool pipelined) -> common::Cycle {
    Chip chip;
    MemoryServer server(chip, 3, MemoryModel{}, 256);
    for (std::uint16_t a = 0; a < kLoads; ++a) {
      server.poke(a, 1000u + a);
    }
    server.install();
    bool done = false;
    common::Cycle finished = 0;
    auto client = [&chip, &done, &finished, pipelined,
                   srv = server.tile()]() -> TileTask {
      MemClient mem(chip, 12, srv);
      int received = 0;
      if (pipelined) {
        for (std::uint8_t t = 0; t < kLoads; ++t) {
          while (!mem.can_issue()) co_await delay(1);
          mem.issue_load(t, t);
          co_await delay(1);
        }
        while (received < kLoads) {
          if (mem.reply_ready()) {
            const auto [tag, data] = mem.take_reply();
            EXPECT_EQ(data, 1000u + tag);
            ++received;
          } else {
            co_await delay(1);
          }
        }
      } else {
        for (std::uint8_t t = 0; t < kLoads; ++t) {
          while (!mem.can_issue()) co_await delay(1);
          mem.issue_load(t, t);
          while (!mem.reply_ready()) co_await delay(1);
          const auto [tag, data] = mem.take_reply();
          EXPECT_EQ(tag, t);
          EXPECT_EQ(data, 1000u + t);
          ++received;
        }
      }
      finished = chip.cycle();
      done = true;
    };
    chip.tile(12).set_program(client());
    EXPECT_TRUE(chip.run_until([&] { return done; }, 50000));
    return finished;
  };

  const common::Cycle blocking = run(false);
  const common::Cycle pipelined = run(true);
  EXPECT_LT(pipelined * 2, blocking)
      << "non-blocking issue should at least halve total latency";
}

TEST(MemoryServerTest, RepliesCarryTagsForOutOfOrderMatching) {
  Chip chip;
  MemoryServer server(chip, 5, MemoryModel{}, 64);
  server.poke(7, 70);
  server.poke(9, 90);
  server.install();
  std::map<int, common::Word> results;
  bool done = false;
  auto client = [&]() -> TileTask {
    MemClient mem(chip, 2, server.tile());
    while (!mem.can_issue()) co_await delay(1);
    mem.issue_load(7, 7);
    while (!mem.can_issue()) co_await delay(1);
    mem.issue_load(9, 9);
    while (results.size() < 2) {
      if (mem.reply_ready()) {
        const auto [tag, data] = mem.take_reply();
        results[tag] = data;
      } else {
        co_await delay(1);
      }
    }
    done = true;
  };
  chip.tile(2).set_program(client());
  EXPECT_TRUE(chip.run_until([&] { return done; }, 10000));
  EXPECT_EQ(results.at(7), 70u);
  EXPECT_EQ(results.at(9), 90u);
}

TEST(MemoryServerTest, TwoClientsShareOneServer) {
  Chip chip;
  MemoryServer server(chip, 10, MemoryModel{}, 64);
  server.install();
  int finished = 0;
  const auto make_client = [&](int tile, std::uint16_t slot,
                               common::Word value) -> TileTask {
    MemClient mem(chip, tile, server.tile());
    while (!mem.can_issue()) co_await delay(1);
    mem.issue_store(0, slot, value);
    while (!mem.reply_ready()) co_await delay(1);
    (void)mem.take_reply();
    while (!mem.can_issue()) co_await delay(1);
    mem.issue_load(1, slot);
    while (!mem.reply_ready()) co_await delay(1);
    const auto [tag, data] = mem.take_reply();
    EXPECT_EQ(data, value);
    ++finished;
  };
  chip.tile(0).set_program(make_client(0, 1, 111));
  chip.tile(15).set_program(make_client(15, 2, 222));
  EXPECT_TRUE(chip.run_until([&] { return finished == 2; }, 20000));
  EXPECT_EQ(server.peek(1), 111u);
  EXPECT_EQ(server.peek(2), 222u);
}

TEST(MemMessageTest, OpWordRoundTrip) {
  const MemMessage m{true, 0xab, 0x1234, 0};
  const MemMessage back = MemMessage::decode_op(m.encode_op());
  EXPECT_EQ(back.is_store, true);
  EXPECT_EQ(back.tag, 0xab);
  EXPECT_EQ(back.addr, 0x1234);
  const MemMessage load{false, 3, 77, 0};
  EXPECT_FALSE(MemMessage::decode_op(load.encode_op()).is_store);
}

}  // namespace
}  // namespace raw::sim
