// Quality of Service (§8.7): three customers share an uplink. The premium
// customer pays for half the port; the token weights enforce it without any
// per-packet scheduler — computation folded into the communication fabric,
// the thesis's third contribution.
//
//   ./build/examples/qos_router
#include <cstdio>

#include "router/raw_router.h"

namespace {

void contend(const char* label, std::array<std::uint32_t, 4> weights) {
  using namespace raw;
  net::TrafficConfig traffic;
  traffic.num_ports = 4;
  traffic.pattern = net::DestPattern::kHotspot;
  traffic.hotspot_port = 3;  // the contended uplink
  traffic.hotspot_fraction = 1.0;
  traffic.size = net::SizeDist::kFixed;
  traffic.fixed_bytes = 512;

  router::RouterConfig config;
  config.runtime.token_weights = weights;
  router::RawRouter router(config, net::RouteTable::simple4(), traffic,
                           /*seed=*/9);
  router.run(400000);

  double total = 0;
  double share[4];
  for (int s = 0; s < 4; ++s) {
    share[s] = static_cast<double>(router.output(3).delivered_from(s));
    total += share[s];
  }
  std::printf("%-28s", label);
  for (int s = 0; s < 4; ++s) std::printf(" %6.1f%%", 100.0 * share[s] / total);
  std::printf("   (uplink at %.2f Gbps)\n", router.gbps());
}

}  // namespace

int main() {
  std::printf("weighted-token QoS: customers 0..3 share uplink port 3\n\n");
  std::printf("%-28s %7s %7s %7s %7s\n", "policy", "cust0", "cust1", "cust2",
              "cust3");
  contend("best effort (1:1:1:1)", {1, 1, 1, 1});
  contend("premium cust0 (3:1:1:1)", {3, 1, 1, 1});
  contend("tiered (4:2:1:1)", {4, 2, 1, 1});
  std::printf("\nThe shares track the token weights exactly: the arbitration\n"
              "is the same compile-time-scheduled fabric, only the token\n"
              "dwell counter changes (no per-packet scheduler anywhere).\n");
  return 0;
}
