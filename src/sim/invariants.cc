#include "sim/invariants.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace raw::sim {

void InvariantMonitor::add_check(std::string name, Check check,
                                 bool deterministic) {
  checks_.push_back(Entry{std::move(name), std::move(check), deterministic});
}

void InvariantMonitor::watch_chip(const Chip& chip) {
  chip.sync_block_accounting();
  baselines_.clear();
  const int n = chip.num_tiles();
  for (int t = 0; t < n; ++t) {
    const Tile& tl = chip.tile(t);
    const SwitchProcessor& sw = tl.switch_proc();
    TileBaseline b;
    b.switch_total = sw.cycles_busy() + sw.cycles_blocked_recv() +
                     sw.cycles_blocked_send() + sw.cycles_idle();
    b.proc_total = tl.proc_cycles_busy() + tl.proc_cycles_blocked();
    b.cycle = chip.cycle();
    baselines_.push_back(b);
  }

  add_check("engine/park_wake_books",
            [&chip] { return chip.check_engine_invariants(); });

  add_check("engine/cycle_accounting", [this, &chip]() -> std::string {
    chip.sync_block_accounting();
    const common::Cycle now = chip.cycle();
    const int tiles = chip.num_tiles();
    for (int t = 0; t < tiles; ++t) {
      const Tile& tl = chip.tile(t);
      const SwitchProcessor& sw = tl.switch_proc();
      const std::uint64_t sw_total = sw.cycles_busy() +
                                     sw.cycles_blocked_recv() +
                                     sw.cycles_blocked_send() +
                                     sw.cycles_idle();
      const std::uint64_t proc_total =
          tl.proc_cycles_busy() + tl.proc_cycles_blocked();
      TileBaseline& b = baselines_[static_cast<std::size_t>(t)];
      // A reconfiguration reloads switch programs, which zeroes their
      // counters (SwitchProcessor::load): re-baseline instead of firing.
      // The owner should also call notify_counters_reset() — this monotonic
      // guard is the backstop when the reset left totals above baseline.
      if (sw_total < b.switch_total || proc_total < b.proc_total) {
        b = TileBaseline{sw_total, proc_total, now};
        continue;
      }
      const std::uint64_t elapsed = now - b.cycle;
      // An injected tile freeze legitimately accounts nothing — the engine
      // skips a frozen tile outright — so the switch counters fall short of
      // wall-clock by exactly the freeze overlap with this span. Windows may
      // overlap (two events can land on the same tile), so take their union.
      std::uint64_t frozen = 0;
      if (const FaultPlan* plan = chip.fault_plan(); plan != nullptr) {
        std::vector<std::pair<common::Cycle, common::Cycle>> spans;
        for (const FaultEvent& e : plan->events()) {
          if (e.kind != FaultKind::kTileFreeze || e.tile != t) continue;
          const common::Cycle lo = std::max(e.at, b.cycle);
          const common::Cycle hi =
              e.permanent ? now
                          : std::min<common::Cycle>(e.at + e.duration, now);
          if (hi > lo) spans.emplace_back(lo, hi);
        }
        std::sort(spans.begin(), spans.end());
        common::Cycle end = 0;
        for (const auto& [lo, hi] : spans) {
          const common::Cycle from = std::max(lo, end);
          if (hi > from) frozen += hi - from;
          end = std::max(end, hi);
        }
      }
      if (sw_total - b.switch_total != elapsed - frozen) {
        return "tile " + std::to_string(t) + ": switch accounted " +
               std::to_string(sw_total - b.switch_total) + " of " +
               std::to_string(elapsed - frozen) + " expected cycles (" +
               std::to_string(elapsed) + " elapsed, " + std::to_string(frozen) +
               " frozen) since cycle " + std::to_string(b.cycle) +
               " (park/wake catch-up credit lost or duplicated)";
      }
      if (proc_total - b.proc_total > elapsed) {
        return "tile " + std::to_string(t) + ": processor accounted " +
               std::to_string(proc_total - b.proc_total) + " cycles in a " +
               std::to_string(elapsed) + "-cycle span since cycle " +
               std::to_string(b.cycle);
      }
      b = TileBaseline{sw_total, proc_total, now};
    }
    return "";
  });
}

void InvariantMonitor::notify_counters_reset(const Chip& chip) {
  chip.sync_block_accounting();
  for (int t = 0;
       t < chip.num_tiles() &&
       static_cast<std::size_t>(t) < baselines_.size();
       ++t) {
    const Tile& tl = chip.tile(t);
    const SwitchProcessor& sw = tl.switch_proc();
    TileBaseline& b = baselines_[static_cast<std::size_t>(t)];
    b.switch_total = sw.cycles_busy() + sw.cycles_blocked_recv() +
                     sw.cycles_blocked_send() + sw.cycles_idle();
    b.proc_total = tl.proc_cycles_busy() + tl.proc_cycles_blocked();
    b.cycle = chip.cycle();
  }
}

std::optional<InvariantViolation> InvariantMonitor::sweep(common::Cycle now) {
  ++sweeps_;
  // Every check runs every sweep, and a deterministic violation wins over a
  // non-deterministic one regardless of registration order: a replay cannot
  // reproduce an RSS blip, so the sentinel must never mask (or race) the
  // deterministic finding that anchors the bundle.
  std::optional<std::size_t> first;
  for (const Entry& e : checks_) {
    ++checks_run_;
    std::string detail = e.check();
    if (detail.empty()) continue;
    InvariantViolation v;
    v.name = e.name;
    v.detail = std::move(detail);
    v.cycle = now;
    v.deterministic = e.deterministic;
    if (!first.has_value() || (v.deterministic &&
                               !violations_[*first].deterministic)) {
      first = violations_.size();
    }
    violations_.push_back(std::move(v));
  }
  if (!first.has_value()) return std::nullopt;
  return violations_[*first];
}

void InvariantMonitor::export_metrics(common::MetricRegistry& registry,
                                      const std::string& prefix) const {
  registry.counter(prefix + "/sweeps").set(sweeps_);
  registry.counter(prefix + "/checks_run").set(checks_run_);
  registry.counter(prefix + "/violations").set(violations_.size());
}

CheckpointRing::CheckpointRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

const Checkpoint& CheckpointRing::capture(const Chip& chip,
                                          std::uint64_t owner_digest) {
  Checkpoint cp;
  cp.cycle = chip.cycle();
  cp.snapshot = chip.snapshot();
  cp.chip_digest = chip.state_digest();
  cp.owner_digest = owner_digest;
  if (ring_.size() == capacity_) ring_.erase(ring_.begin());
  ring_.push_back(std::move(cp));
  ++captured_;
  return ring_.back();
}

std::vector<const Checkpoint*> CheckpointRing::entries() const {
  std::vector<const Checkpoint*> out;
  out.reserve(ring_.size());
  for (const Checkpoint& cp : ring_) out.push_back(&cp);
  return out;
}

const Checkpoint* CheckpointRing::nearest_at_or_before(
    common::Cycle cycle) const {
  const Checkpoint* best = nullptr;
  for (const Checkpoint& cp : ring_) {
    if (cp.cycle <= cycle) best = &cp;
  }
  return best;
}

const Checkpoint* CheckpointRing::latest() const {
  return ring_.empty() ? nullptr : &ring_.back();
}

std::size_t CheckpointRing::spill_all(const std::string& dir,
                                      const std::string& prefix,
                                      std::string* error) const {
  std::size_t written = 0;
  for (const Checkpoint& cp : ring_) {
    const std::string path = dir + "/" + prefix + "ckpt_" +
                             std::to_string(cp.cycle) + ".snap";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      if (error != nullptr) *error = "cannot write " + path;
      return written;
    }
    std::fprintf(f,
                 "raw-checkpoint v1\ncycle %llu\nlast_progress %llu\n"
                 "chip_digest 0x%016llx\nowner_digest 0x%016llx\n",
                 static_cast<unsigned long long>(cp.snapshot.cycle),
                 static_cast<unsigned long long>(cp.snapshot.last_progress),
                 static_cast<unsigned long long>(cp.chip_digest),
                 static_cast<unsigned long long>(cp.owner_digest));
    for (std::size_t c = 0; c < cp.snapshot.channels.size(); ++c) {
      const Channel::State& st = cp.snapshot.channels[c];
      std::fprintf(f, "channel %zu transferred %llu stall %llu staged %s words",
                   c, static_cast<unsigned long long>(st.words_transferred),
                   static_cast<unsigned long long>(st.stall_until),
                   st.staged.has_value()
                       ? std::to_string(*st.staged).c_str()
                       : "-");
      for (const common::Word w : st.words) {
        std::fprintf(f, " %08x", static_cast<unsigned>(w));
      }
      std::fprintf(f, "\n");
    }
    for (std::size_t t = 0; t < cp.snapshot.switches.size(); ++t) {
      const Chip::Snapshot::SwitchState& sw = cp.snapshot.switches[t];
      std::fprintf(f, "switch %zu pc %zu halted %d regs", t, sw.pc,
                   sw.halted ? 1 : 0);
      for (const common::Word r : sw.regs) {
        std::fprintf(f, " %08x", static_cast<unsigned>(r));
      }
      std::fprintf(f, "\n");
    }
    std::fclose(f);
    ++written;
  }
  return written;
}

}  // namespace raw::sim
