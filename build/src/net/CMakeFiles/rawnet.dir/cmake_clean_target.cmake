file(REMOVE_RECURSE
  "librawnet.a"
)
