// Experiment E4 — Figure 7-3: per-tile utilization of the Raw processor
// over an 800-cycle window, routing 64-byte and 1,024-byte packets at
// saturation. '#' = busy, 'r'/'s'/'m' = blocked on receive/send/memory,
// '.' = idle. The thesis's observation to reproduce: at 64 bytes the
// ingress tiles (4, 7, 8, 11) spend most of the window blocked by the
// crossbar, while at 1,024 bytes the fabric approaches the static-network
// streaming limit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "router/raw_router.h"

namespace {

void run_case(raw::common::ByteCount bytes, bool csv, int threads,
              raw::common::MetricRegistry* reg) {
  raw::router::RouterConfig cfg;
  cfg.threads = threads;
  raw::net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = raw::net::DestPattern::kUniform;
  t.size = raw::net::SizeDist::kFixed;
  t.fixed_bytes = bytes;
  raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), t, 7);

  // Warm up past the pipeline fill, then trace 800 cycles.
  constexpr raw::common::Cycle kWarmup = 4000;
  router.chip().trace().configure(kWarmup, kWarmup + 800, 16);
  router.run(kWarmup + 800);

  if (reg != nullptr) {
    const std::string prefix =
        "fig7_3/" + std::to_string(bytes) + "B";
    router.export_metrics(*reg, prefix);
    for (int tile = 0; tile < 16; ++tile) {
      const auto u = router.chip().trace().utilization(tile);
      const std::string tp = prefix + "/tile" + std::to_string(tile);
      reg->gauge(tp + "/busy_frac").set(u.busy);
      reg->gauge(tp + "/blocked_frac").set(u.blocked);
      reg->gauge(tp + "/idle_frac").set(u.idle);
    }
  }

  if (csv) {
    std::printf("%s", router.chip().trace().csv().c_str());
    return;
  }
  std::printf("\n--- %llu-byte packets, cycles %llu..%llu ---\n",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(kWarmup),
              static_cast<unsigned long long>(kWarmup + 800));
  std::printf("%s", router.chip().trace().ascii(100).c_str());

  std::printf("\nper-tile utilization (busy / blocked / idle):\n");
  for (int tile = 0; tile < 16; ++tile) {
    const auto u = router.chip().trace().utilization(tile);
    std::printf("  tile %2d: %5.1f%% / %5.1f%% / %5.1f%%\n", tile,
                100.0 * u.busy, 100.0 * u.blocked, 100.0 * u.idle);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  int threads = 0;
  const char* metrics_json = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--csv")) {
      csv = true;
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--metrics-json") && i + 1 < argc) {
      metrics_json = argv[++i];
    }
  }
  raw::common::MetricRegistry registry;
  raw::common::MetricRegistry* reg =
      metrics_json != nullptr ? &registry : nullptr;

  std::printf("Figure 7-3: per-tile utilization, 800-cycle window\n");
  run_case(64, csv, threads, reg);
  run_case(1024, csv, threads, reg);

  if (reg != nullptr) {
    std::FILE* f = std::fopen(metrics_json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_json);
      return 1;
    }
    const std::string json = reg->to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %zu metrics to %s\n", reg->size(), metrics_json);
  }
  return 0;
}
