// The complete single-chip Raw Router (chapter 4): a 4x4 Raw chip with four
// ports, each mapped to an Ingress, Lookup, Crossbar and Egress tile, line
// cards on the chip edges, compile-time-scheduled switch programs, and the
// Rotating Crossbar on static network 1.
#pragma once

#include <array>
#include <memory>

#include "net/route_table.h"
#include "net/traffic.h"
#include "router/line_cards.h"
#include "router/schedule_compiler.h"
#include "router/tile_programs.h"
#include "sim/chip.h"

namespace raw::router {

struct RouterConfig {
  RuntimeConfig runtime;
  /// FIFO depth of the static links (the edge FIFOs must hold a full IP
  /// header, so >= 5; the hardware interface has similar small SRAM FIFOs).
  std::size_t link_fifo_depth = 8;
  /// External line-card buffering per input port, in words (§4.4: buffering
  /// and dropping happen outside the chip).
  std::size_t line_card_queue_words = 1 << 15;
  /// Sample per-channel FIFO occupancy/backpressure every cycle (small
  /// constant cost per channel; off for throughput benches).
  bool channel_stats = false;
};

class RawRouter {
 public:
  RawRouter(RouterConfig config, net::RouteTable table,
            net::TrafficConfig traffic, std::uint64_t seed);

  /// Runs the router for `cycles` chip cycles.
  void run(common::Cycle cycles);

  /// Stops the arrival processes, then runs until the fabric drains (or
  /// `max_cycles` pass). Returns true if fully drained.
  bool drain(common::Cycle max_cycles);

  [[nodiscard]] sim::Chip& chip() { return *chip_; }
  [[nodiscard]] const RouterCore& core() const { return core_; }
  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] const ScheduleCompiler& compiler() const { return compiler_; }

  [[nodiscard]] const InputLineCard& input(int port) const {
    return *inputs_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] const OutputLineCard& output(int port) const {
    return *outputs_[static_cast<std::size_t>(port)];
  }

  /// Aggregates across the four output ports.
  [[nodiscard]] std::uint64_t delivered_packets() const;
  [[nodiscard]] common::ByteCount delivered_bytes() const;
  [[nodiscard]] std::uint64_t errors() const;

  /// Aggregate throughput over the cycles run so far.
  [[nodiscard]] double gbps() const;
  [[nodiscard]] double mpps() const;

  /// Attaches (or detaches, with nullptr) a packet-lifecycle tracer to the
  /// line cards and tile programs, and labels its tracks (one per tile and
  /// per line card). Call `tracer->enable(budget)` to start recording.
  void set_tracer(common::PacketTracer* tracer);

  /// Publishes the router's observability into `registry` under `prefix`:
  ///   <prefix>/port<P>/ingress/{offered,dropped,delivered}_packets, ...
  ///   <prefix>/port<P>/crossbar/{quanta,grants,denials,empty_headers}
  ///   <prefix>/port<P>/latency/{p50,p95,p99,max,mean} (cycles)
  ///   <prefix>/port<P>/{gbps,mpps,drop_fraction}
  /// plus the chip-level metrics (see sim::Chip::export_metrics) under
  /// <prefix>/chip. Safe to call repeatedly: totals are overwritten.
  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "router") const;

 private:
  RouterConfig config_;
  net::RouteTable table_;
  net::SmallTable forwarding_;
  Layout layout_;
  ScheduleCompiler compiler_;
  std::unique_ptr<sim::Chip> chip_;
  RouterCore core_;
  net::TrafficGen traffic_;
  PacketLedger ledger_;
  std::array<std::unique_ptr<InputLineCard>, kNumPorts> inputs_;
  std::array<std::unique_ptr<OutputLineCard>, kNumPorts> outputs_;
};

}  // namespace raw::router
