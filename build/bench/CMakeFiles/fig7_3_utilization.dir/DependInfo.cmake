
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_3_utilization.cc" "bench/CMakeFiles/fig7_3_utilization.dir/fig7_3_utilization.cc.o" "gcc" "bench/CMakeFiles/fig7_3_utilization.dir/fig7_3_utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/rawrouter.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/rawclick.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/rawfabric.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rawnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rawsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rawcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
