#include "common/log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace raw::common {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool iequals(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b))) {
      return false;
    }
  }
  return *a == '\0' && *b == '\0';
}

/// One-time environment read, sequenced before the first level access.
bool apply_env_once() {
  set_log_level_from_env();
  return true;
}

bool ensure_env_applied() {
  static const bool applied = apply_env_once();
  return applied;
}

}  // namespace

LogLevel parse_log_level(const char* value, LogLevel fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  if (iequals(value, "debug")) return LogLevel::kDebug;
  if (iequals(value, "info")) return LogLevel::kInfo;
  if (iequals(value, "warn") || iequals(value, "warning")) return LogLevel::kWarn;
  if (iequals(value, "error")) return LogLevel::kError;
  if (iequals(value, "off") || iequals(value, "none")) return LogLevel::kOff;
  if (std::strlen(value) == 1 && value[0] >= '0' && value[0] <= '4') {
    return static_cast<LogLevel>(value[0] - '0');
  }
  return fallback;
}

void set_log_level_from_env() {
  const char* env = std::getenv("RAW_LOG_LEVEL");
  if (env != nullptr) g_level = parse_log_level(env, g_level);
}

void set_log_level(LogLevel level) {
  ensure_env_applied();
  g_level = level;
}

LogLevel log_level() {
  ensure_env_applied();
  return g_level;
}

void log(LogLevel level, const std::string& message) {
  ensure_env_applied();
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace raw::common
