// ClusterFabric end-to-end: packets cross chips and validate (TTL per hop,
// payload, addressing), conservation closes at drain, and the cluster
// digest is bit-identical serial vs thread-per-chip at any worker count and
// dense vs sparse stepping.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "cluster/fabric.h"

namespace raw::cluster {
namespace {

ClusterConfig small_cluster(TopologyKind kind, int chips, int threads) {
  ClusterConfig cfg;
  cfg.topology = kind;
  cfg.num_chips = chips;
  cfg.threads = threads;
  cfg.link_latency = 8;
  cfg.traffic.load = 0.25;
  cfg.traffic.fixed_bytes = 64;
  cfg.traffic.remote_fraction = 0.5;
  return cfg;
}

TEST(ClusterFabricTest, DeliversAcrossChipsAndConserves) {
  ClusterFabric fabric(small_cluster(TopologyKind::kPointToPoint, 2, 1), 7);
  fabric.run(6000);
  EXPECT_TRUE(fabric.drain(200000));
  EXPECT_GT(fabric.delivered_packets(), 0u);
  EXPECT_EQ(fabric.errors(), 0u);
  EXPECT_EQ(fabric.lost_packets(), 0u);
  EXPECT_EQ(fabric.ledger().in_flight.size(), 0u);
  EXPECT_EQ(fabric.offered_packets(),
            fabric.dropped_at_card() + fabric.ledger().erased_total());
  // Cross-chip traffic actually used the trunks.
  std::uint64_t trunk_words = 0;
  for (std::size_t l = 0; l < fabric.num_links(); ++l) {
    trunk_words += fabric.link(l).delivered_total();
  }
  EXPECT_GT(trunk_words, 0u);
  // Multi-hop latencies include at least the link latency.
  EXPECT_GE(fabric.latency_histogram().count(), fabric.delivered_packets());
}

TEST(ClusterFabricTest, PurelyLocalTrafficStaysOffTheTrunks) {
  ClusterConfig cfg = small_cluster(TopologyKind::kPointToPoint, 2, 1);
  cfg.traffic.remote_fraction = 0.0;
  ClusterFabric fabric(cfg, 7);
  fabric.run(4000);
  EXPECT_TRUE(fabric.drain(200000));
  EXPECT_GT(fabric.delivered_packets(), 0u);
  for (std::size_t l = 0; l < fabric.num_links(); ++l) {
    EXPECT_EQ(fabric.link(l).sent_total(), 0u) << "link " << l;
  }
}

TEST(ClusterFabricTest, LinkConservationUnderThrottling) {
  ClusterConfig cfg = small_cluster(TopologyKind::kLeafSpine, 4, 1);
  cfg.throttle_numer = 1;
  cfg.throttle_denom = 3;  // trunks at a third of line rate
  ClusterFabric fabric(cfg, 21);
  for (int chunk = 0; chunk < 8; ++chunk) {
    fabric.run(500);
    // Between epochs every link must satisfy the word identity.
    for (std::size_t l = 0; l < fabric.num_links(); ++l) {
      EXPECT_EQ(fabric.link(l).sent_total(),
                fabric.link(l).delivered_total() +
                    fabric.link(l).in_flight_words())
          << "link " << l << " after chunk " << chunk;
    }
  }
  EXPECT_TRUE(fabric.drain(400000));
  EXPECT_EQ(fabric.errors(), 0u);
  EXPECT_EQ(fabric.lost_packets(), 0u);
}

std::uint64_t digest_at(const ClusterConfig& base, int threads,
                        std::uint64_t seed, bool dense = false) {
  ClusterConfig cfg = base;
  cfg.threads = threads;
  ClusterFabric fabric(cfg, seed);
  if (dense) fabric.set_force_dense(true);
  fabric.run(3000);
  EXPECT_TRUE(fabric.drain(200000));
  EXPECT_GT(fabric.delivered_packets(), 0u);
  return fabric.cluster_digest();
}

TEST(ClusterFabricTest, DigestIdenticalAcrossWorkerCounts) {
  const ClusterConfig cfg = small_cluster(TopologyKind::kLeafSpine, 4, 1);
  const std::uint64_t serial = digest_at(cfg, 1, 13);
  for (const int t : {2, 4, 8}) {
    EXPECT_EQ(digest_at(cfg, t, 13), serial) << "threads=" << t;
  }
}

TEST(ClusterFabricTest, DigestIdenticalDenseVsSparse) {
  const ClusterConfig cfg = small_cluster(TopologyKind::kLeafSpine, 4, 1);
  EXPECT_EQ(digest_at(cfg, 1, 13), digest_at(cfg, 1, 13, /*dense=*/true));
  // And dense under threads matches too.
  EXPECT_EQ(digest_at(cfg, 4, 13), digest_at(cfg, 4, 13, /*dense=*/true));
}

TEST(ClusterFabricTest, DigestDependsOnSeedAndTopology) {
  const ClusterConfig cfg = small_cluster(TopologyKind::kLeafSpine, 4, 1);
  EXPECT_NE(digest_at(cfg, 1, 13), digest_at(cfg, 1, 14));
}

TEST(ClusterFabricTest, FatTreeRoutesEndToEnd) {
  ClusterConfig cfg = small_cluster(TopologyKind::kFatTree, 5, 2);
  cfg.fat_tree_k = 2;
  ClusterFabric fabric(cfg, 3);
  fabric.run(4000);
  EXPECT_TRUE(fabric.drain(300000));
  EXPECT_GT(fabric.delivered_packets(), 0u);
  EXPECT_EQ(fabric.errors(), 0u);
}

TEST(ClusterFabricTest, WorkerCountClampsToChips) {
  ClusterFabric fabric(small_cluster(TopologyKind::kPointToPoint, 2, 8), 1);
  EXPECT_EQ(fabric.workers(), 2);
}

TEST(ClusterFabricTest, MetricsExportIsWellFormed) {
  ClusterFabric fabric(small_cluster(TopologyKind::kLeafSpine, 4, 1), 5);
  fabric.run(2000);
  (void)fabric.drain(200000);
  common::MetricRegistry registry;
  fabric.export_metrics(registry);
  EXPECT_GT(registry.counter("cluster/delivered_packets").value(), 0u);
  EXPECT_EQ(registry.counter("cluster/chips").value(), 4u);
  // Conservation identity as exported.
  const std::uint64_t offered =
      registry.counter("cluster/conservation/offered").value();
  const std::uint64_t accounted =
      registry.counter("cluster/conservation/dropped_at_card").value() +
      registry.counter("cluster/conservation/delivered").value() +
      registry.counter("cluster/conservation/invalid").value() +
      registry.counter("cluster/conservation/ingress_drops").value() +
      registry.counter("cluster/conservation/lost").value() +
      registry.counter("cluster/conservation/in_flight").value();
  EXPECT_EQ(offered, accounted);
}

}  // namespace
}  // namespace raw::cluster
