// The Raw chip: an R x C grid of tiles, two static networks, one dynamic
// network, chip-edge I/O ports, and the deterministic cycle engine.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/channel.h"
#include "sim/device.h"
#include "sim/dynamic_network.h"
#include "sim/tile.h"
#include "sim/trace.h"

namespace raw::sim {

class FaultPlan;

struct ChipConfig {
  GridShape shape{4, 4};
  /// Instantiate the dynamic network (memory traffic substrate). The router
  /// itself never uses it, so benches can drop it for speed.
  bool with_dynamic_network = true;
  /// FIFO depth of every static-network link.
  std::size_t link_fifo_depth = Channel::kDefaultCapacity;
  /// Execution-engine worker threads. The chip itself always steps serially;
  /// this field is consumed by callers (RawRouter, benches) that wrap the
  /// chip in an exec::ParallelRunner when the resolved value exceeds 1.
  /// 0 = resolve from RAWSIM_THREADS (default 1); see exec::resolve_threads.
  int threads = 0;
};

/// One chip-edge static-network port: the pair of channels a line card (or
/// other device) uses to exchange words with the switch of an edge tile.
struct IoPort {
  Channel* to_chip = nullptr;    // device writes, edge switch reads
  Channel* from_chip = nullptr;  // edge switch writes, device reads
};

class Chip {
 public:
  explicit Chip(ChipConfig config = {});

  [[nodiscard]] const ChipConfig& config() const { return config_; }
  [[nodiscard]] GridShape shape() const { return config_.shape; }
  [[nodiscard]] int num_tiles() const { return config_.shape.num_tiles(); }

  [[nodiscard]] Tile& tile(int index) { return *tiles_[static_cast<std::size_t>(index)]; }
  [[nodiscard]] const Tile& tile(int index) const {
    return *tiles_[static_cast<std::size_t>(index)];
  }

  /// Edge I/O port of `tile` in off-grid direction `dir` on static network
  /// `net`. Asserts that the direction actually leaves the grid.
  [[nodiscard]] IoPort io_port(int net, int tile, Dir dir) const;

  [[nodiscard]] DynamicNetwork* dynamic_network() { return dyn_.get(); }

  /// Devices are stepped (in registration order) at the start of every
  /// cycle; the chip does not own them.
  void add_device(Device* device);
  [[nodiscard]] const std::vector<Device*>& devices() const { return devices_; }

  [[nodiscard]] common::Cycle cycle() const { return cycle_; }
  [[nodiscard]] Trace& trace() { return trace_; }

  /// Attaches (or detaches, with nullptr) a fault-injection plan. The plan
  /// is bound immediately (channel names resolved) and then stepped every
  /// cycle after channels begin the cycle and before devices run. The chip
  /// does not own it. With no plan attached the per-cycle cost is one
  /// predicted null test and behaviour is bit-identical.
  void set_fault_plan(FaultPlan* plan);
  [[nodiscard]] FaultPlan* fault_plan() const { return faults_; }

  /// Cycle at which a word last crossed any channel on the chip (0 until the
  /// first transfer). The progress watchdog compares this against cycle().
  [[nodiscard]] common::Cycle last_progress_cycle() const {
    return last_progress_cycle_;
  }

  /// Every channel on the chip (static links, edge ports, tile FIFOs, and
  /// the dynamic network), for diagnostics and fault targeting.
  [[nodiscard]] const std::vector<Channel*>& all_channels() const {
    return all_channels_;
  }
  /// Channel with the given name, or nullptr.
  [[nodiscard]] Channel* find_channel(const std::string& name) const;

  /// Runs `cycles` cycles of the whole chip.
  void run(common::Cycle cycles);

  /// Runs until `pred()` is true or `max_cycles` elapse; returns true if the
  /// predicate fired.
  template <typename Pred>
  bool run_until(Pred&& pred, common::Cycle max_cycles) {
    for (common::Cycle i = 0; i < max_cycles; ++i) {
      if (pred()) return true;
      step();
    }
    return pred();
  }

  void step();

  /// Execution-engine hook: closes the current cycle after every channel has
  /// committed. `progress` is the OR of all channels' end_cycle() results.
  /// Chip::step() calls this itself; an external engine (exec::ParallelRunner)
  /// that replicates the phase structure calls it exactly once per cycle.
  void finish_cycle(bool progress) {
    if (progress) last_progress_cycle_ = cycle_;
    ++cycle_;
  }

  /// Aggregate static-network words moved (both networks), for bandwidth
  /// accounting.
  [[nodiscard]] std::uint64_t static_words_transferred() const;

  /// Turns per-channel occupancy/backpressure sampling on (or off) for every
  /// channel on the chip, including tile<->switch FIFOs and the dynamic
  /// network. Off by default; the simulation is unaffected either way.
  void enable_channel_stats(bool on = true);

  /// Publishes chip-level observability into `registry` under `prefix`:
  ///   <prefix>/cycles
  ///   <prefix>/tile<T>/proc/{busy,blocked}_cycles
  ///   <prefix>/tile<T>/switch/{busy,blocked_recv,blocked_send,idle}_cycles
  ///   <prefix>/channel/<name>/{words,mean_occupancy,backpressure_cycles}
  /// Channel metrics appear only for channels with activity (or with stats
  /// enabled), so an idle mesh does not flood the registry. Safe to call
  /// repeatedly; values are overwritten with current totals.
  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "chip") const;

  /// The static-network channel carrying words out of `tile` toward `dir`
  /// on network `net` (always exists; edge directions are the I/O ports'
  /// from-chip side). For per-link utilization accounting.
  [[nodiscard]] const Channel& static_link(int net, int tile, Dir dir) const {
    return *out_link(net, tile, dir);
  }

 private:
  [[nodiscard]] Channel* out_link(int net, int tile, Dir dir) const;
  [[nodiscard]] Channel* in_link(int net, int tile, Dir dir) const;

  ChipConfig config_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  // static_links_[net][tile][dir]: channel carrying words out of `tile`
  // toward `dir` (off the edge for boundary tiles — that is the I/O port's
  // from_chip side).
  std::array<std::vector<std::array<std::unique_ptr<Channel>, 4>>, kNumStaticNets>
      static_links_;
  // edge_in_[net][tile][dir]: to-chip channel of the I/O port in off-grid
  // direction `dir` (null for interior directions).
  std::array<std::vector<std::array<std::unique_ptr<Channel>, 4>>, kNumStaticNets>
      edge_in_;
  std::unique_ptr<DynamicNetwork> dyn_;
  std::vector<Device*> devices_;
  std::vector<Channel*> all_channels_;
  FaultPlan* faults_ = nullptr;
  Trace trace_;
  common::Cycle cycle_ = 0;
  common::Cycle last_progress_cycle_ = 0;
};

}  // namespace raw::sim
