// Chaos harness CLI: run the router under seeded fault mixes and check the
// self-protection invariants (packet conservation, no silent hang, no
// unexplained damage — see router/chaos.h).
//
//   ./rawchaos                          # standard mixes x 4 seeds
//   ./rawchaos --seeds 16 --cycles 40000
//   ./rawchaos --mix flip+stall --seed 7 -v   # one combination, verbose
//   ./rawchaos --permanent --seed 3           # permanent-freeze detection
//
// Exit status is 0 only when every combination passes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "router/chaos.h"

namespace {

using raw::router::ChaosMix;
using raw::router::ChaosResult;
using raw::router::ChaosSpec;

struct Args {
  int seeds = 4;
  raw::common::Cycle cycles = 40000;
  std::uint64_t seed = 0;    // nonzero: run a single seed
  const char* mix = nullptr; // run a single mix, e.g. "flip+stall"
  bool permanent = false;
  bool verbose = false;
  int threads = 0;  // execution-engine workers (0: RAWSIM_THREADS)
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      a.seeds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc) {
      a.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--mix") && i + 1 < argc) {
      a.mix = argv[++i];
    } else if (!std::strcmp(argv[i], "--permanent")) {
      a.permanent = true;
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      a.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-v") || !std::strcmp(argv[i], "--verbose")) {
      a.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: rawchaos [--seeds N] [--cycles N] [--seed S] "
                   "[--mix flip+stall+freeze+overrun] [--permanent] "
                   "[--threads T] [-v]\n");
      std::exit(2);
    }
  }
  return a;
}

ChaosMix mix_from_string(const std::string& s) {
  ChaosMix m;
  if (!raw::router::parse_mix(s, &m)) {
    std::fprintf(stderr, "unknown fault mix '%s'\n", s.c_str());
    std::exit(2);
  }
  return m;
}

void print_result(const ChaosResult& r, bool verbose) {
  std::printf("%-28s seed %-4llu %-5s %-14s dlv %-7llu err %-4llu lost %-4llu "
              "mal %-3llu rsync %-3llu faults %llu\n",
              r.mix.c_str(), static_cast<unsigned long long>(r.seed),
              r.pass ? "PASS" : "FAIL",
              raw::router::drain_outcome_name(r.outcome),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.errors),
              static_cast<unsigned long long>(r.lost),
              static_cast<unsigned long long>(r.malformed),
              static_cast<unsigned long long>(r.resyncs),
              static_cast<unsigned long long>(r.faults_injected));
  if (!r.pass) std::printf("  -> %s\n", r.failure.c_str());
  if (verbose && !r.stall_summary.empty()) {
    std::printf("  %s\n", r.stall_summary.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  std::vector<ChaosMix> mixes;
  if (args.mix != nullptr) {
    mixes.push_back(mix_from_string(args.mix));
  } else if (args.permanent) {
    mixes.push_back(ChaosMix{.permanent_freeze = true});
  } else {
    mixes = raw::router::standard_mixes();
  }
  std::vector<std::uint64_t> seeds;
  if (args.seed != 0) {
    seeds.push_back(args.seed);
  } else {
    for (int s = 1; s <= args.seeds; ++s) {
      seeds.push_back(static_cast<std::uint64_t>(s));
    }
  }

  int total = 0;
  int passed = 0;
  for (const ChaosMix& mix : mixes) {
    for (const std::uint64_t seed : seeds) {
      ChaosSpec spec;
      spec.seed = seed;
      spec.mix = mix;
      spec.run_cycles = args.cycles;
      spec.threads = args.threads;
      const ChaosResult r = raw::router::run_chaos(spec);
      ++total;
      if (r.pass) ++passed;
      print_result(r, args.verbose);
    }
  }
  std::printf("\n%d/%d combinations passed\n", passed, total);
  return passed == total ? 0 : 1;
}
