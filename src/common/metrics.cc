#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace raw::common {
namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

const char* metric_kind_name(MetricRegistry::Kind kind) {
  switch (kind) {
    case MetricRegistry::Kind::kCounter: return "counter";
    case MetricRegistry::Kind::kGauge: return "gauge";
    case MetricRegistry::Kind::kHistogram: return "histogram";
  }
  return "?";
}

MetricRegistry::Counter& MetricRegistry::counter(const std::string& name) {
  RAW_ASSERT_MSG(gauges_.find(name) == gauges_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name already registered with a different kind");
  return counters_[name];
}

MetricRegistry::Gauge& MetricRegistry::gauge(const std::string& name) {
  RAW_ASSERT_MSG(counters_.find(name) == counters_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name already registered with a different kind");
  return gauges_[name];
}

MetricRegistry::HistogramMetric& MetricRegistry::histogram(
    const std::string& name, double bucket_width, std::size_t num_buckets) {
  RAW_ASSERT_MSG(counters_.find(name) == counters_.end() &&
                     gauges_.find(name) == gauges_.end(),
                 "metric name already registered with a different kind");
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, HistogramMetric(bucket_width, num_buckets))
      .first->second;
}

const MetricRegistry::Counter* MetricRegistry::find_counter(
    const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const MetricRegistry::Gauge* MetricRegistry::find_gauge(
    const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const MetricRegistry::HistogramMetric* MetricRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c != nullptr ? c->value() : 0;
}

double MetricRegistry::gauge_value(const std::string& name) const {
  const Gauge* g = find_gauge(name);
  return g != nullptr ? g->value() : 0.0;
}

std::vector<MetricRegistry::Sample> MetricRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(size());
  for (const auto& [name, c] : counters_) {
    Sample s;
    s.name = name;
    s.kind = Kind::kCounter;
    s.value = static_cast<double>(c.value());
    s.count = c.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    Sample s;
    s.name = name;
    s.kind = Kind::kGauge;
    s.value = g.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    Sample s;
    s.name = name;
    s.kind = Kind::kHistogram;
    s.count = h.count();
    s.mean = h.mean();
    s.min = h.min();
    s.max = h.max();
    s.p50 = h.quantile(0.50);
    s.p95 = h.quantile(0.95);
    s.p99 = h.quantile(0.99);
    out.push_back(std::move(s));
  }
  // The three maps are each sorted; merge into one name-sorted list.
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
        c == '/') {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string MetricRegistry::to_json() const {
  std::string out = "{\"schema\":\"metrics/v2\",\"metrics\":[";
  bool first = true;
  for (const Sample& s : snapshot()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape_json(s.name) + "\",\"kind\":\"";
    out += metric_kind_name(s.kind);
    out += '"';
    switch (s.kind) {
      case Kind::kCounter:
        out += ",\"value\":" + std::to_string(s.count);
        break;
      case Kind::kGauge:
        out += ",\"value\":" + format_double(s.value);
        break;
      case Kind::kHistogram:
        out += ",\"count\":" + std::to_string(s.count);
        out += ",\"mean\":" + format_double(s.mean);
        out += ",\"min\":" + format_double(s.min);
        out += ",\"max\":" + format_double(s.max);
        out += ",\"p50\":" + format_double(s.p50);
        out += ",\"p95\":" + format_double(s.p95);
        out += ",\"p99\":" + format_double(s.p99);
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string MetricRegistry::to_csv() const {
  std::string out = "name,kind,value,count,mean,min,max,p50,p95,p99\n";
  for (const Sample& s : snapshot()) {
    out += s.name;
    out += ',';
    out += metric_kind_name(s.kind);
    switch (s.kind) {
      case Kind::kCounter:
        out += ',' + std::to_string(s.count) + ",,,,,,,";
        break;
      case Kind::kGauge:
        out += ',' + format_double(s.value) + ",,,,,,,";
        break;
      case Kind::kHistogram:
        out += ",," + std::to_string(s.count) + ',' + format_double(s.mean) +
               ',' + format_double(s.min) + ',' + format_double(s.max) + ',' +
               format_double(s.p50) + ',' + format_double(s.p95) + ',' +
               format_double(s.p99);
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace raw::common
