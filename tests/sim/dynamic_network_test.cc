#include "sim/dynamic_network.h"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "common/rng.h"

namespace raw::sim {
namespace {

// Runs the network until `tile` has ejected a full message; returns
// header + payload. Fails the test on timeout.
std::vector<common::Word> drain_message(DynamicNetwork& net, int tile,
                                        int max_cycles = 1000) {
  std::vector<common::Word> msg;
  std::uint32_t want = 0;
  for (int c = 0; c < max_cycles; ++c) {
    while (net.has_eject(tile)) {
      const common::Word w = net.pop_eject(tile);
      if (msg.empty()) want = dyn_header_len(w) + 1;
      msg.push_back(w);
      if (msg.size() == want) return msg;
    }
    net.step_standalone();
  }
  ADD_FAILURE() << "message did not arrive at tile " << tile;
  return msg;
}

TEST(DynHeaderTest, RoundTrip) {
  const common::Word h = make_dyn_header(7, 12, 31);
  EXPECT_EQ(dyn_header_src(h), 7);
  EXPECT_EQ(dyn_header_dest(h), 12);
  EXPECT_EQ(dyn_header_len(h), 31u);
}

TEST(DynamicNetworkTest, SelfDelivery) {
  DynamicNetwork net(GridShape{4, 4});
  const std::array<common::Word, 2> payload{111, 222};
  net.inject(5, 5, payload);
  const auto msg = drain_message(net, 5);
  ASSERT_EQ(msg.size(), 3u);
  EXPECT_EQ(dyn_header_dest(msg[0]), 5);
  EXPECT_EQ(msg[1], 111u);
  EXPECT_EQ(msg[2], 222u);
}

TEST(DynamicNetworkTest, CornerToCornerDelivery) {
  DynamicNetwork net(GridShape{4, 4});
  std::vector<common::Word> payload;
  for (common::Word i = 0; i < 8; ++i) payload.push_back(i * 10);
  net.inject(0, 15, payload);
  const auto msg = drain_message(net, 15);
  ASSERT_EQ(msg.size(), 9u);
  EXPECT_EQ(dyn_header_src(msg[0]), 0);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(msg[i + 1], i * 10);
}

TEST(DynamicNetworkTest, ZeroLengthMessage) {
  DynamicNetwork net(GridShape{4, 4});
  net.inject(2, 13, {});
  const auto msg = drain_message(net, 13);
  ASSERT_EQ(msg.size(), 1u);
  EXPECT_EQ(dyn_header_len(msg[0]), 0u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(DynamicNetworkTest, WormsDoNotInterleaveAtDestination) {
  // Two senders target the same tile; each message must eject contiguously
  // (wormhole output locking).
  DynamicNetwork net(GridShape{4, 4});
  const std::array<common::Word, 4> pa{1, 2, 3, 4};
  const std::array<common::Word, 4> pb{9, 8, 7, 6};
  net.inject(0, 10, pa);
  net.inject(3, 10, pb);
  std::vector<common::Word> all;
  for (int c = 0; c < 1000 && all.size() < 10; ++c) {
    while (net.has_eject(10)) all.push_back(net.pop_eject(10));
    net.step_standalone();
  }
  ASSERT_EQ(all.size(), 10u);
  // Parse messages in arrival order; each must be intact.
  std::size_t pos = 0;
  for (int m = 0; m < 2; ++m) {
    const common::Word header = all[pos];
    const std::uint32_t len = dyn_header_len(header);
    ASSERT_EQ(len, 4u);
    const int src = dyn_header_src(header);
    const auto& expect = src == 0 ? pa : pb;
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(all[pos + 1 + i], expect[i]) << "message " << m << " word " << i;
    }
    pos += 1 + len;
  }
  EXPECT_EQ(net.messages_delivered(), 2u);
}

TEST(DynamicNetworkTest, PerSourceOrderingPreserved) {
  // Messages from one source to one destination arrive in injection order
  // (dimension-ordered routing uses a single path).
  DynamicNetwork net(GridShape{4, 4});
  for (common::Word m = 0; m < 5; ++m) {
    const std::array<common::Word, 1> payload{m};
    // Wait until there's queue space.
    for (int c = 0; c < 1000 && !net.can_inject(1, 1); ++c) net.step_standalone();
    net.inject(1, 14, payload);
  }
  std::vector<common::Word> bodies;
  for (int c = 0; c < 2000 && bodies.size() < 5; ++c) {
    while (net.has_eject(14)) {
      const common::Word h = net.pop_eject(14);
      ASSERT_EQ(dyn_header_len(h), 1u);
      ASSERT_TRUE(net.has_eject(14) || true);
      // Body word follows in the same or a later cycle.
      while (!net.has_eject(14)) net.step_standalone();
      bodies.push_back(net.pop_eject(14));
    }
    net.step_standalone();
  }
  ASSERT_EQ(bodies.size(), 5u);
  for (common::Word m = 0; m < 5; ++m) EXPECT_EQ(bodies[m], m);
}

TEST(DynamicNetworkTest, InjectBackpressure) {
  DynamicNetwork net(GridShape{4, 4}, /*endpoint_queue_words=*/8);
  EXPECT_TRUE(net.can_inject(0, 7));
  net.inject(0, 15, std::vector<common::Word>(7, 1));
  EXPECT_FALSE(net.can_inject(0, 7));  // queue full until drained
}

TEST(DynamicNetworkTest, RandomTrafficAllDelivered) {
  DynamicNetwork net(GridShape{4, 4});
  common::Rng rng(2026);
  int sent = 0;
  std::map<int, int> expected_words;  // per destination
  for (int i = 0; i < 200; ++i) {
    const int src = static_cast<int>(rng.below(16));
    const int dst = static_cast<int>(rng.below(16));
    const auto len = static_cast<std::uint32_t>(rng.below(8));
    if (!net.can_inject(src, len)) {
      net.step_standalone();
      continue;
    }
    std::vector<common::Word> payload(len, static_cast<common::Word>(i));
    net.inject(src, dst, payload);
    ++sent;
    expected_words[dst] += static_cast<int>(len) + 1;
    net.step_standalone();
  }
  // Drain everything.
  for (int c = 0; c < 5000; ++c) {
    for (int t = 0; t < 16; ++t) {
      while (net.has_eject(t)) {
        (void)net.pop_eject(t);
        --expected_words[t];
      }
    }
    net.step_standalone();
  }
  EXPECT_EQ(net.messages_delivered(), static_cast<std::uint64_t>(sent));
  for (const auto& [tile, remaining] : expected_words) {
    EXPECT_EQ(remaining, 0) << "missing words at tile " << tile;
  }
}

TEST(DynamicNetworkTest, MaxPayloadEnforced) {
  DynamicNetwork net(GridShape{4, 4});
  const std::vector<common::Word> payload(kMaxDynPayloadWords, 5);
  net.inject(0, 1, payload);
  const auto msg = drain_message(net, 1);
  EXPECT_EQ(msg.size(), kMaxDynPayloadWords + 1);
}

TEST(DynamicNetworkDeathTest, OversizedPayloadAborts) {
  DynamicNetwork net(GridShape{4, 4});
  const std::vector<common::Word> payload(kMaxDynPayloadWords + 1, 5);
  EXPECT_DEATH(net.inject(0, 1, payload), "");
}

}  // namespace
}  // namespace raw::sim
