#include "cluster/cards.h"

#include <algorithm>

#include "common/assert.h"

namespace raw::cluster {

ClusterInputCard::ClusterInputCard(sim::Channel* to_chip, int host_id,
                                   net::TrafficGen* traffic,
                                   router::PacketLedger* ledger,
                                   std::size_t queue_capacity_words)
    : to_chip_(to_chip),
      host_id_(host_id),
      traffic_(traffic),
      ledger_(ledger),
      queue_capacity_words_(queue_capacity_words) {
  RAW_ASSERT(to_chip_ != nullptr && traffic_ != nullptr && ledger_ != nullptr);
}

void ClusterInputCard::generate(sim::Chip& chip) {
  while (!stopped_ && chip.cycle() >= next_arrival_) {
    const net::PacketDesc desc = traffic_->next(host_id_);
    const common::ByteCount bytes = std::max<common::ByteCount>(desc.bytes, 20);
    const auto words = common::words_for_bytes(bytes);
    next_arrival_ = chip.cycle() + desc.gap_cycles + words;
    ++offered_packets_;
    offered_bytes_ += bytes;
    if (queue_.size() + words > queue_capacity_words_) {
      ++dropped_packets_;  // external drop, as on the single-chip card
      continue;
    }
    const std::uint64_t uid = make_host_uid(host_id_, next_seq_++);
    const net::Packet p =
        router::make_test_packet(uid, host_id_, desc.dst_port, bytes);
    ledger_->insert_in_flight_locked(
        uid, router::PacketLedger::Entry{chip.cycle(), host_id_, desc.dst_port,
                                         bytes});
    for (const common::Word w : net::packet_to_words(p)) queue_.push_back(w);
    queued_packets_.emplace_back(uid, static_cast<std::uint32_t>(words));
  }
}

void ClusterInputCard::step(sim::Chip& chip) {
  generate(chip);
  if (!queue_.empty() && to_chip_->can_write()) {
    to_chip_->write(queue_.front());
    queue_.pop_front();
    if (!queued_packets_.empty() &&
        ++front_words_sent_ == queued_packets_.front().second) {
      queued_packets_.pop_front();
      front_words_sent_ = 0;
    }
  }
}

std::uint64_t ClusterInputCard::abandon() {
  stopped_ = true;
  std::uint64_t written_off = 0;
  for (const auto& [uid, words] : queued_packets_) {
    // The partially-streamed front's words died inside the dead chip; the
    // fully-queued rest never left the card. Either way the packet is lost.
    if (ledger_->take_in_flight_locked(uid, nullptr)) ++written_off;
  }
  ledger_->credit_lost_locked(written_off);
  queued_packets_.clear();
  queue_.clear();
  front_words_sent_ = 0;
  return written_off;
}

ClusterOutputCard::ClusterOutputCard(sim::Channel* from_chip, int host_id,
                                     router::PacketLedger* ledger,
                                     const std::vector<std::vector<int>>* hops)
    : from_chip_(from_chip),
      host_id_(host_id),
      ledger_(ledger),
      hops_(hops) {
  RAW_ASSERT(from_chip_ != nullptr && ledger_ != nullptr && hops_ != nullptr);
}

void ClusterOutputCard::step(sim::Chip& chip) {
  if (!from_chip_->can_read()) return;
  if (assembler_.push(from_chip_->read())) finish_packet(chip);
}

void ClusterOutputCard::finish_packet(sim::Chip& chip) {
  net::Packet p = net::packet_from_words(assembler_.take());

  bool ok = net::checksum_ok(p.header);
  const std::uint64_t uid = router::uid_of(p.header);
  router::PacketLedger::Entry entry;
  if (!ledger_->take_in_flight_locked(uid, &entry)) {
    // Corrupted uid field or the surviving fragment of a written-off frame;
    // frame damage, not a second packet loss.
    ++unmatched_frames_;
    return;
  }

  // End-to-end validation across the whole fabric: delivered to the right
  // host, payload untouched, and the TTL decremented exactly once per chip
  // on the (ECMP-deterministic) path. The hop count indexes by the ledger
  // entry's source (always in range; a corrupted src byte fails the header
  // comparison below instead).
  if (entry.dst_port != host_id_ || entry.bytes != p.size_bytes()) ok = false;
  const net::Packet expected = router::make_test_packet(
      uid, entry.src_port, entry.dst_port, entry.bytes);
  if (degraded_max_hops_ == 0) {
    const int hops = (*hops_)[static_cast<std::size_t>(entry.src_port)]
                             [static_cast<std::size_t>(host_id_)];
    if (p.header.ttl + hops != expected.header.ttl) ok = false;
  } else {
    // After a reroute the as-built hop matrix no longer predicts the path
    // length (and in-flight packets may have taken the old path): accept
    // any plausible decrement count, bounded by the chip count.
    const int decremented = expected.header.ttl - p.header.ttl;
    if (decremented < 1 || decremented > degraded_max_hops_) ok = false;
  }
  if (p.payload != expected.payload) ok = false;
  if (p.header.src != expected.header.src || p.header.dst != expected.header.dst) {
    ok = false;
  }

  if (!ok) {
    ++dropped_invalid_;
    ledger_->credit_invalid_locked();
    return;
  }
  ledger_->credit_delivered_locked();
  ++delivered_packets_;
  delivered_bytes_ += p.size_bytes();
  const double latency = static_cast<double>(chip.cycle() - entry.created);
  latency_.add(latency);
  latency_hist_.add(latency);
}

}  // namespace raw::cluster
