// ClusterFabric: N rotating-crossbar router chips wired into a cluster.
//
// The fabric instantiates one 4x4 Raw chip per cluster node — each with the
// full single-chip router mapping (ingress/lookup/crossbar/egress tiles and
// compile-time switch schedules) — assigns every chip-edge port a role from
// the declarative topology (host line, inter-chip trunk, unused), and wires
// trunk ports through seeded InterChipLinks. Forwarding is hierarchical:
// each chip's route table maps every global host prefix 10.<host>/16 to a
// local output port (its own host line, or a shortest-path trunk chosen by
// destination-hash ECMP), so the unmodified single-chip tile programs route
// cluster traffic hop by hop, decrementing TTL once per chip.
//
// Execution advances all chips in lock-step epochs of at most link_latency
// cycles (conservative lookahead): within an epoch chips share nothing but
// barrier-committed link state and the mutex-guarded packet ledger, so the
// epoch can run thread-per-chip (exec::ClusterRunner) with results
// digest-identical to the serial schedule at any worker count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cards.h"
#include "cluster/cluster_config.h"
#include "cluster/cluster_faults.h"
#include "cluster/inter_chip_link.h"
#include "cluster/topology.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "exec/cluster_runner.h"
#include "net/route_table.h"
#include "net/small_table.h"
#include "net/traffic.h"
#include "router/layout.h"
#include "router/line_cards.h"
#include "router/schedule_compiler.h"
#include "router/tile_programs.h"
#include "sim/chip.h"

namespace raw::sim {
class InvariantMonitor;
}

namespace raw::cluster {

/// Run health: a fabric is degraded once a confirmed permanent failure (a
/// trunk cut or a chip death) has triggered a fail-over reroute. Degraded
/// is a live state, not an exit: surviving chips keep forwarding, and write
/// offs keep the conservation identity exact.
enum class ClusterStatus : std::uint8_t { kHealthy = 0, kDegraded = 1 };

const char* cluster_status_name(ClusterStatus s);

/// One fail-over episode, recorded at the barrier that confirmed it.
struct FailoverReport {
  common::Cycle cycle = 0;           // barrier cycle of the reroute
  std::vector<int> dead_chips;       // chips newly confirmed dead
  std::vector<int> dead_links;       // links newly excluded (incl. chip-adjacent)
  std::vector<int> unreachable_hosts;  // total after this reroute
  std::uint64_t written_off_words = 0;   // link words written off here
  std::uint64_t abandoned_packets = 0;   // dead-chip input packets written off
};

class ClusterFabric {
 public:
  ClusterFabric(ClusterConfig config, std::uint64_t seed);

  /// Runs the whole cluster for `cycles` cycles (rounded up to whole
  /// epochs' worth of barrier commits internally, but every chip advances
  /// exactly `cycles`).
  void run(common::Cycle cycles);

  /// Stops the arrival processes and runs until every offered packet is
  /// accounted for (true), the in-flight set stops shrinking (packets are
  /// written off as lost), or `max_cycles` elapse (false). In a degraded
  /// run the write-off quiesce is a *clean* exit (true): the losses are
  /// explained by the confirmed failure and the books still close. Packet
  /// conservation is asserted on every exit path.
  [[nodiscard]] bool drain(common::Cycle max_cycles);
  [[nodiscard]] bool drained() const { return drained_; }

  // Fault-tolerance observability.
  [[nodiscard]] ClusterStatus status() const { return status_; }
  [[nodiscard]] bool degraded() const {
    return status_ == ClusterStatus::kDegraded;
  }
  [[nodiscard]] const ClusterFaultPlan& fault_plan() const { return plan_; }
  [[nodiscard]] const std::vector<bool>& dead_links() const {
    return link_dead_;
  }
  [[nodiscard]] const std::vector<bool>& dead_chips() const {
    return chip_dead_;
  }
  /// Hosts some alive chip can no longer reach (sorted; empty when healthy).
  [[nodiscard]] const std::vector<int>& unreachable_hosts() const {
    return unreachable_hosts_;
  }
  [[nodiscard]] int failover_generation() const { return failover_generation_; }
  [[nodiscard]] const std::vector<FailoverReport>& failover_reports() const {
    return failover_reports_;
  }
  [[nodiscard]] std::uint64_t written_off_words() const {
    return written_off_words_;
  }
  [[nodiscard]] std::uint64_t abandoned_packets() const {
    return abandoned_packets_;
  }
  /// Reliable-layer totals across every link.
  [[nodiscard]] std::uint64_t total_retransmits() const;
  [[nodiscard]] std::uint64_t total_delivered_corrupt() const;

  /// Registers the cluster's continuous checks on `monitor` (sweep between
  /// epochs only): per-link word/sequence books, the cluster conservation
  /// identity with write-off accounting, and per-chip liveness (every chip
  /// not confirmed dead must advance between sweeps). `this` must outlive
  /// the monitor's sweeps.
  void register_invariants(sim::InvariantMonitor& monitor);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] int num_chips() const { return topo_.num_chips; }
  [[nodiscard]] int num_hosts() const {
    return static_cast<int>(topo_.hosts.size());
  }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  /// Resolved thread-per-chip worker count (1 = serial).
  [[nodiscard]] int workers() const { return runner_->workers(); }
  /// Cycles every chip has run (identical across chips at barriers).
  [[nodiscard]] common::Cycle cycle() const { return cycles_run_; }
  [[nodiscard]] common::Cycle epoch_cycles() const { return epoch_; }

  [[nodiscard]] sim::Chip& chip(int i) {
    return *nodes_[static_cast<std::size_t>(i)]->chip;
  }
  [[nodiscard]] const InterChipLink& link(std::size_t i) const {
    return *links_[i];
  }
  [[nodiscard]] const ClusterInputCard& input(int host) const {
    return *inputs_[static_cast<std::size_t>(host)];
  }
  [[nodiscard]] const ClusterOutputCard& output(int host) const {
    return *outputs_[static_cast<std::size_t>(host)];
  }
  [[nodiscard]] const router::PacketLedger& ledger() const { return ledger_; }

  /// Forces dense stepping on every chip (dense-vs-sparse differential).
  void set_force_dense(bool on);

  // Aggregates across every host card.
  [[nodiscard]] std::uint64_t offered_packets() const;
  [[nodiscard]] std::uint64_t dropped_at_card() const;
  [[nodiscard]] std::uint64_t delivered_packets() const;
  [[nodiscard]] common::ByteCount delivered_bytes() const;
  [[nodiscard]] std::uint64_t errors() const;
  [[nodiscard]] std::uint64_t lost_packets() const {
    return ledger_.erased_lost;
  }
  /// Aggregate delivered throughput over the cycles run so far.
  [[nodiscard]] double aggregate_gbps() const;
  [[nodiscard]] double aggregate_mpps() const;
  /// Cluster-wide end-to-end latency distribution (all host cards merged).
  [[nodiscard]] common::Histogram latency_histogram() const;

  /// FNV-1a digest of the cluster's observable end state: every chip's
  /// architectural digest folded with its router counters, the host cards,
  /// the link conservation counters, and the shared ledger. Bit-identical
  /// across serial/threaded schedules and dense/sparse engines.
  [[nodiscard]] std::uint64_t cluster_digest() const;

  /// Per-chip accumulated wall time (thread-per-chip load balance view).
  [[nodiscard]] const std::vector<std::uint64_t>& chip_wall_ns() const {
    return runner_->chip_wall_ns();
  }

  /// Publishes cluster observability under `prefix`:
  ///   <prefix>/{gbps,mpps,delivered_packets,delivered_bytes,errors}
  ///   <prefix>/latency/{p50,p95,p99}
  ///   <prefix>/conservation/{offered,dropped_at_card,delivered,...}
  ///   <prefix>/chip<C>/{gbps,offered_packets,delivered_packets,wall_ns,
  ///                     epoch_lag_ns}
  ///   <prefix>/link<L>/{sent_words,delivered_words,occupancy,in_flight}
  void export_metrics(common::MetricRegistry& registry,
                      const std::string& prefix = "cluster") const;

 private:
  /// One cluster node: chip + its routing state + its seeded traffic.
  /// Heap-allocated so RouterCore (captured by reference in the tile
  /// programs) and the tables keep stable addresses.
  struct ChipNode {
    std::unique_ptr<sim::Chip> chip;
    net::RouteTable table;
    net::SmallTable forwarding;
    router::RouterCore core;
    std::unique_ptr<net::TrafficGen> traffic;
  };

  void build_chip(int c);
  void build_cards(int c);
  /// Epoch barrier: commits every link (single-threaded).
  void commit_links();
  /// Barrier tail (single-threaded, after commit_links and the cycle
  /// bookkeeping): fires due fault events, then samples the watchdog.
  void barrier_maintenance();
  void apply_due_faults();
  /// Watchdog sample: a cut link reports loss of signal; a chip that made
  /// no cycle progress over a full interval is confirmed dead.
  void watchdog_sample();
  /// Deterministic fail-over: excludes the newly dead elements, writes off
  /// their in-flight words, abandons dead-chip inputs, and recomputes every
  /// surviving chip's routes (same BFS + ECMP rule as the build).
  void fail_over(std::vector<int> new_dead_chips,
                 std::vector<int> new_dead_links);
  void check_conservation() const;

  ClusterConfig config_;
  std::uint64_t seed_;
  Topology topo_;
  router::Layout layout_;
  router::ScheduleCompiler compiler_{layout_};
  router::PacketLedger ledger_;
  std::vector<std::unique_ptr<ChipNode>> nodes_;
  std::vector<std::unique_ptr<InterChipLink>> links_;  // parallel to topo_.links
  std::vector<std::unique_ptr<ClusterInputCard>> inputs_;    // by host id
  std::vector<std::unique_ptr<ClusterOutputCard>> outputs_;  // by host id
  std::vector<std::unique_ptr<router::TrunkEgressCard>> trunk_egress_;
  std::vector<std::unique_ptr<router::TrunkIngressCard>> trunk_ingress_;
  std::unique_ptr<exec::ClusterRunner> runner_;
  common::Cycle epoch_ = 0;
  common::Cycle cycles_run_ = 0;
  bool drained_ = true;

  // Fault injection + fail-over state (all barrier-phase only).
  ClusterFaultPlan plan_;
  ClusterStatus status_ = ClusterStatus::kHealthy;
  std::vector<bool> link_dead_;
  std::vector<bool> chip_dead_;
  std::vector<int> unreachable_hosts_;
  std::vector<FailoverReport> failover_reports_;
  int failover_generation_ = 0;
  std::uint64_t written_off_words_ = 0;
  std::uint64_t abandoned_packets_ = 0;
  common::Cycle last_watchdog_ = 0;
  std::vector<common::Cycle> watchdog_chip_cycle_;
};

}  // namespace raw::cluster
