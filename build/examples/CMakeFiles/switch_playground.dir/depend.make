# Empty dependencies file for switch_playground.
# This may be replaced when dependencies are built.
