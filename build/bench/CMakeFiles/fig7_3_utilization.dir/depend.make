# Empty dependencies file for fig7_3_utilization.
# This may be replaced when dependencies are built.
