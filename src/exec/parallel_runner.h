// Deterministic parallel execution engine.
//
// ParallelRunner drives a Chip with N worker threads and produces results
// bit-identical to Chip::run()/run_until()/step() at any worker count. It
// exploits the simulator's two-phase channel semantics: within a cycle every
// agent reads only start-of-cycle channel state and all writes are staged,
// so agents may step in any order — including concurrently — as long as the
// phase boundaries (begin, step, commit) are kept globally ordered. The
// engine therefore runs each simulated cycle as a short SPMD pipeline of
// barrier-separated phases (the sparse engine's epoch stamps replaced the
// old eager begin-cycle sweep, so there is no phase A anymore):
//
//   [pred]  worker 0 evaluates the run_until predicate      (run_until only)
//   B       dense-mode check, fault plan, devices, and the pre-stamp of
//           cross-stripe channels, worker 0                          (serial)
//   C       tile stepping over the runnable set, each worker over its
//           tile stripe (Chip::step_agents)                        (parallel)
//   D       dynamic-network routing, worker 0          (serial, if present)
//   E       dirty-lane commit, each worker over its own lane; then the
//           stats pass over its channel stripe when enabled        (parallel)
//   F       progress reduction, wake application, cycle close, w0    (serial)
//
// Batched quanta (see DESIGN.md "Batched-quantum execution"): the pipeline
// above rendezvous 4-6 times per simulated cycle, which dominates the ~1 us
// of real work a cycle costs. When the chip's state permits it, worker 0
// instead grants a conservative lookahead K derived from the cross-stripe
// channel FIFOs — with start occupancy j and free space f, a boundary link
// whose endpoints are both active constrains K to min(max(j,1), max(f,1));
// links with an inert endpoint (halted or idle-parked switch) constrain
// nothing — and each worker free-runs K local cycles of its stripe against
// its own lane clock with NO internal barrier. Boundary channels enter
// quantum mode for the duration: writers commit against the start-of-
// quantum credit into a deferred buffer (touching nothing the reader's
// worker reads), and worker 0 drains the deferred words at the quantum edge
// with one word-batch push — the same conservative-epoch commit the
// cluster fabric applies at inter-chip link granularity. K clamps back to 1
// whenever exactness demands cycle granularity: run_until predicates,
// dense/trace/stats cycles, tracer staging, fault-plan events or open
// windows, an armed dynamic network, link-protected boundaries, or devices
// that do not declare a quantum home tile. Digests remain bit-identical to
// serial at every K and worker count — the K=1 path *is* the old pipeline.
//
// Why this is deterministic (see DESIGN.md "Sparse cycle engine" for the
// full argument): during C a channel's reader-side state is touched only by
// the thread owning the reader tile, its writer-side staging only by the
// thread owning the writer tile, and everything else about it is frozen
// until E. Channels whose endpoints straddle a stripe boundary are epoch-
// stamped in B so the lazy refresh never races, and blocked writers never
// park on them (the wake would race with the park). Each worker drains its
// own dirty lane in E — a channel is staged by exactly one worker, so lanes
// partition the dirty set. The remaining cross-thread mutations are (a)
// ingress ledger drops, which commute and go through a mutex, and (b)
// packet-tracer records, which are staged per worker and replayed in worker
// order — exactly the serial recording order — before the ring buffer sees
// them.
//
// The calling thread acts as worker 0; N-1 helper threads are spawned at
// construction and parked on a condition variable between runs. With a
// resolved worker count of 1 the runner delegates straight to the chip's
// serial loop and the engine adds zero overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/trace_event.h"
#include "common/types.h"
#include "exec/barrier.h"
#include "exec/partition.h"

namespace raw::sim {
class Channel;
class Chip;
class Device;
}

namespace raw::common {
class Profiler;
}

namespace raw::exec {

class ParallelRunner {
 public:
  /// Wraps `chip` (not owned; must outlive the runner) with `threads`
  /// workers. `threads` goes through resolve_threads() and is then clamped
  /// to the tile count, so 0 honours RAWSIM_THREADS and defaults to serial.
  explicit ParallelRunner(sim::Chip& chip, int threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] int workers() const { return partition_.workers(); }
  [[nodiscard]] const Partition& partition() const { return partition_; }

  /// Same contract as Chip::run.
  void run(common::Cycle cycles);
  /// Same contract as Chip::run_until: pred is evaluated before every cycle
  /// (and once more at the end) by worker 0 only, so it may freely read any
  /// chip, device, or ledger state.
  bool run_until(const std::function<bool()>& pred, common::Cycle max_cycles);
  /// Single cycle (one full phase pipeline).
  void step() { run(1); }

  /// Registers the packet-lifecycle tracer whose ring buffer must be kept
  /// deterministic. Null detaches. The runner sizes the tracer's staging
  /// shards; staging itself is switched on only while a run is in flight
  /// and the tracer is enabled.
  void set_tracer(common::PacketTracer* tracer);

  /// Attaches (or detaches, with nullptr) an engine profiler: sizes its
  /// per-worker accumulator slots and forwards it to the chip so both the
  /// serial fast path and the chip-level hooks (park/wake/commit counters,
  /// flight-recorder tick) record into the same instance. Not owned; must
  /// outlive the runner's runs. Zero-cost when never attached.
  void set_profiler(common::Profiler* profiler);
  [[nodiscard]] common::Profiler* profiler() const { return profiler_; }

  /// Default ceiling on the batched-quantum lookahead when neither the
  /// caller nor RAWSIM_LOOKAHEAD picks one. High enough that inert-boundary
  /// workloads amortize the barrier thoroughly, low enough that the
  /// deferred-commit buffers stay cache-resident.
  static constexpr common::Cycle kDefaultMaxLookahead = 64;

  /// Caps the batched-quantum lookahead. 0 (the default) resolves from the
  /// RAWSIM_LOOKAHEAD environment variable and falls back to
  /// kDefaultMaxLookahead; 1 forces cycle-granular execution (the exact
  /// pre-batching pipeline). Results are bit-identical at every value.
  void set_max_lookahead(common::Cycle lookahead);
  /// The resolved lookahead ceiling currently in force.
  [[nodiscard]] common::Cycle max_lookahead() const { return max_lookahead_; }
  /// Static safe-lookahead derivation from the boundary FIFO depths (see
  /// exec::derived_lookahead); the per-quantum decision recomputes slack
  /// from live occupancy and may exceed this when boundaries are inert.
  [[nodiscard]] common::Cycle derived_lookahead() const {
    return derived_lookahead_;
  }

  /// Quantum statistics for the runs so far (parallel dispatches only; the
  /// workers()==1 fast path delegates to the chip and records nothing).
  /// Every engine iteration counts as one quantum of >= 1 cycles, so
  /// quantum_cycles()/quanta() is the effective barrier amortization.
  [[nodiscard]] std::uint64_t quanta() const { return quanta_; }
  [[nodiscard]] std::uint64_t quantum_cycles() const { return quantum_cycles_; }
  [[nodiscard]] common::Cycle max_quantum() const { return max_quantum_; }

 private:
  enum class Mode { kRun, kRunUntil };

  struct alignas(64) PaddedBool {
    bool value = false;
  };
  struct alignas(64) PaddedCycle {
    common::Cycle value = 0;
  };

  void worker_main(int wid);
  /// The per-worker phase pipeline; run by helper threads and by the
  /// calling thread (as worker 0). Returns run_until's result on worker 0.
  bool execute(int wid);
  void dispatch_and_join(Mode mode, common::Cycle limit,
                         const std::function<bool()>* pred);

  /// Worker 0, start of every engine iteration: the number of cycles the
  /// next quantum may cover (>= 1), from the clamp chain documented above.
  common::Cycle decide_quantum(common::Cycle remaining);
  /// True when `tile`'s switch cannot move a word this run segment: halted,
  /// or idle-parked (a park with no wake channel can only be released at a
  /// run boundary, so inertness is stable for any quantum).
  [[nodiscard]] bool switch_inert(int tile) const;
  /// Same for the tile processor (idle-parked or its program has finished).
  [[nodiscard]] bool proc_inert(int tile) const;

  sim::Chip& chip_;
  Partition partition_;
  // Channels whose reader and writer tiles land on different workers;
  // pre-stamped each cycle in phase B (and flagged shared on the channel),
  // and the unit of the quantum slack computation.
  std::vector<BoundaryLink> boundary_links_;
  Barrier barrier_;
  std::vector<std::thread> threads_;
  std::vector<PaddedBool> sense_;     // per-worker barrier sense, all runs
  std::vector<PaddedBool> progress_;  // per-worker end_cycle progress OR
  std::vector<PaddedCycle> progress_cycle_;  // last local cycle a word moved

  // Batched-quantum state. quantum_k_ is written by worker 0 before the
  // phase-B barrier and read by everyone after it; quantum_devices_ stripes
  // the quantum-safe devices by home-tile owner at dispatch time.
  common::Cycle lookahead_cfg_ = 0;   // as passed to set_max_lookahead
  common::Cycle max_lookahead_ = 1;   // resolved ceiling
  common::Cycle derived_lookahead_ = 1;
  common::Cycle quantum_k_ = 1;
  bool quantum_capable_ = false;      // per-dispatch static gate
  std::vector<std::vector<sim::Device*>> quantum_devices_;
  std::uint64_t quanta_ = 0;
  std::uint64_t quantum_cycles_ = 0;
  common::Cycle max_quantum_ = 0;

  // Job slot: written by the caller under mutex_, read by workers after the
  // generation bump, so no per-field synchronization is needed.
  Mode mode_ = Mode::kRun;
  common::Cycle limit_ = 0;
  const std::function<bool()>* pred_ = nullptr;
  bool staging_ = false;
  std::atomic<bool> stop_{false};
  bool result_ = false;

  common::PacketTracer* tracer_ = nullptr;
  common::Profiler* profiler_ = nullptr;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t job_gen_ = 0;
  bool shutdown_ = false;
};

}  // namespace raw::exec
