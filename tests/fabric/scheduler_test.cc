#include "fabric/scheduler.h"

#include <gtest/gtest.h>

#include <set>

namespace raw::fabric {
namespace {

QueueSnapshot snap_voq(int ports, std::vector<std::uint32_t> depths) {
  return QueueSnapshot(ports, std::move(depths),
                       std::vector<int>(static_cast<std::size_t>(ports), -1));
}

// Verifies `m` is a valid matching against VOQ occupancy: no input or
// output used twice, and every granted pair has a queued cell.
void expect_valid(const Matching& m, const QueueSnapshot& q) {
  std::set<int> outs;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] < 0) continue;
    EXPECT_TRUE(outs.insert(m[i]).second) << "output granted twice";
    EXPECT_GT(q.voq(static_cast<int>(i), m[i]), 0u) << "grant without request";
  }
}

TEST(IslipTest, EmptyQueuesNoMatch) {
  IslipScheduler s(4);
  const auto m = s.match(snap_voq(4, std::vector<std::uint32_t>(16, 0)),
                         Matching(4, -1));
  for (const int g : m) EXPECT_EQ(g, -1);
}

TEST(IslipTest, FullDemandGetsPerfectMatch) {
  IslipScheduler s(4);
  const auto q = snap_voq(4, std::vector<std::uint32_t>(16, 1));
  const auto m = s.match(q, Matching(4, -1));
  std::set<int> outs(m.begin(), m.end());
  EXPECT_EQ(outs.size(), 4u);  // all four inputs matched to distinct outputs
  expect_valid(m, q);
}

TEST(IslipTest, SingleRequestGranted) {
  IslipScheduler s(4);
  std::vector<std::uint32_t> d(16, 0);
  d[2 * 4 + 3] = 5;  // input 2 -> output 3
  const auto m = s.match(snap_voq(4, d), Matching(4, -1));
  EXPECT_EQ(m[2], 3);
  EXPECT_EQ(m[0], -1);
}

TEST(IslipTest, ConflictResolvedRoundRobinAndDesynchronizes) {
  IslipScheduler s(2, 1);
  // Both inputs want only output 0.
  std::vector<std::uint32_t> d{1, 0, 1, 0};
  const auto m1 = s.match(snap_voq(2, d), Matching(2, -1));
  const int winner1 = m1[0] == 0 ? 0 : 1;
  EXPECT_TRUE((m1[0] == 0) != (m1[1] == 0));  // exactly one wins
  const auto m2 = s.match(snap_voq(2, d), Matching(2, -1));
  const int winner2 = m2[0] == 0 ? 0 : 1;
  EXPECT_NE(winner1, winner2);  // pointer moved past the first winner
}

TEST(IslipTest, PointerAdvancesOnlyOnFirstIterationAccept) {
  IslipScheduler s(4, 1);
  std::vector<std::uint32_t> d(16, 0);
  d[0 * 4 + 1] = 1;
  (void)s.match(snap_voq(4, d), Matching(4, -1));
  EXPECT_EQ(s.grant_pointer(1), 1);   // one beyond granted input 0
  EXPECT_EQ(s.accept_pointer(0), 2);  // one beyond accepted output 1
  EXPECT_EQ(s.grant_pointer(0), 0);   // untouched outputs keep pointers
}

TEST(IslipTest, HeldConnectionsExcluded) {
  IslipScheduler s(4);
  const auto q = snap_voq(4, std::vector<std::uint32_t>(16, 1));
  Matching held(4, -1);
  held[1] = 2;  // input 1 is mid-packet into output 2
  const auto m = s.match(q, held);
  EXPECT_EQ(m[1], 2);  // preserved
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 1) {
      EXPECT_NE(m[i], 2) << "held output re-granted";
    }
  }
}

TEST(IslipTest, MultipleIterationsImproveMatch) {
  // Crafted demand where one grant/accept round leaves work on the table:
  // input0 requests {0,1}, input1 requests {0}. With both grant pointers at
  // 0, output0 and output1 both grant input0; input0 accepts output0;
  // input1 gets nothing in iteration 1 but output0 is taken, so only a
  // second iteration can match input1... which also needs output0 - pick a
  // solvable case: input1 requests {1} too.
  IslipScheduler one_iter(2, 1);
  IslipScheduler two_iter(2, 2);
  // input0 -> {0,1}, input1 -> {0,1}; both outputs initially grant input 0.
  std::vector<std::uint32_t> d{1, 1, 1, 1};
  const auto m1 = one_iter.match(snap_voq(2, d), Matching(2, -1));
  const auto m2 = two_iter.match(snap_voq(2, d), Matching(2, -1));
  int matched1 = 0;
  int matched2 = 0;
  for (const int g : m1) matched1 += g >= 0 ? 1 : 0;
  for (const int g : m2) matched2 += g >= 0 ? 1 : 0;
  EXPECT_EQ(matched2, 2);
  EXPECT_LE(matched1, matched2);
}

TEST(FifoHolTest, OnlyHeadOfLineBids) {
  FifoHolScheduler s(4);
  std::vector<int> hol{2, 2, -1, 1};
  QueueSnapshot q(4, std::vector<std::uint32_t>(16, 0), hol);
  const auto m = s.match(q, Matching(4, -1));
  // Inputs 0 and 1 both want output 2: exactly one wins.
  EXPECT_TRUE((m[0] == 2) != (m[1] == 2));
  EXPECT_EQ(m[2], -1);
  EXPECT_EQ(m[3], 1);
}

TEST(FifoHolTest, RoundRobinRotatesWinners) {
  FifoHolScheduler s(2);
  std::vector<int> hol{0, 0};
  QueueSnapshot q(2, std::vector<std::uint32_t>{1, 0, 1, 0}, hol);
  const auto m1 = s.match(q, Matching(2, -1));
  const auto m2 = s.match(q, Matching(2, -1));
  EXPECT_NE(m1[0], m2[0]);  // alternates between the two inputs
}

TEST(RandomMaximalTest, ProducesMaximalValidMatching) {
  RandomMaximalScheduler s(4, 99);
  const auto q = snap_voq(4, std::vector<std::uint32_t>(16, 1));
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = s.match(q, Matching(4, -1));
    expect_valid(m, q);
    // With full demand a maximal matching is perfect.
    for (const int g : m) EXPECT_GE(g, 0);
  }
}

TEST(RandomMaximalTest, RespectsHeld) {
  RandomMaximalScheduler s(4, 7);
  const auto q = snap_voq(4, std::vector<std::uint32_t>(16, 1));
  Matching held(4, -1);
  held[0] = 0;
  held[3] = 1;
  const auto m = s.match(q, held);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[3], 1);
  for (const std::size_t i : {1u, 2u}) {
    EXPECT_NE(m[i], 0);
    EXPECT_NE(m[i], 1);
  }
}

}  // namespace
}  // namespace raw::fabric
