// Instruction set of the Raw static switch processor (§3.3).
//
// Each switch instruction pairs one *control* operation (a branch, an
// immediate ALU op on the small switch register file, or a word transfer from
// the tile processor) with any number of *route* components. A route
// component moves one word between two of the five crossbar endpoints
// {N, S, E, W, Proc} on one of the two static networks. The whole instruction
// fires atomically: if any source word is missing or any destination FIFO is
// full, the switch stalls without side effects — this is exactly the Raw
// static network's flow-control behaviour and is what makes compile-time
// schedules deadlock-free when generated conflict-free.
//
// A tiny textual assembler/disassembler is provided so that schedules emitted
// by the router's compile-time scheduler can be inspected and written by hand
// in tests. Syntax, one instruction per line ('#' starts a comment):
//
//   label:  bnez r0, label | W>P, P>E@2
//
// i.e. an optional label, an optional control op, and after '|' (or alone) a
// comma-separated route list SRC>DST with an optional @2 suffix selecting
// static network 2. Control ops:
//
//   nop | halt | jump L | li rN, imm | addi rN, imm
//   bnez rN, L | beqz rN, L | recv rN      (rN <- word from $csto, network 1)
//   jr rN          (jump to the instruction index in rN — how the tile
//                   processor "loads the address of the configuration into
//                   the program counter of the switch processor", §6.5)
//   bnezd rN, L    (decrement rN, branch if the result is non-zero: the
//                   single-cycle streaming loop; rN = Q executes the
//                   instruction's routes exactly Q times at 1 word/cycle)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/coords.h"

namespace raw::sim {

inline constexpr int kNumStaticNets = 2;
inline constexpr int kNumSwitchRegs = 4;
/// Switch instruction memory: 8,192 words per tile (§3.2).
inline constexpr std::size_t kSwitchImemWords = 8192;

enum class CtrlOp : std::uint8_t {
  kNop,
  kHalt,
  kJump,
  kLi,
  kAddi,
  kBnez,
  kBeqz,
  kRecv,   // pop one word from the processor's $csto (net 1) into a register
  kJr,     // indirect jump to the instruction index held in a register
  kBnezd,  // decrement register, branch when the result is non-zero
};

/// One crossbar move: word travels src -> dst on static network `net`.
struct Move {
  std::uint8_t net = 0;  // 0 or 1
  Dir src = Dir::kProc;
  Dir dst = Dir::kProc;

  friend bool operator==(const Move&, const Move&) = default;
};

struct SwitchInstr {
  CtrlOp op = CtrlOp::kNop;
  std::uint8_t reg = 0;   // register operand for li/addi/bnez/beqz/recv
  std::int32_t imm = 0;   // immediate, or absolute branch target index
  std::vector<Move> moves;

  friend bool operator==(const SwitchInstr&, const SwitchInstr&) = default;
};

/// A validated switch program.
class SwitchProgram {
 public:
  SwitchProgram() = default;
  explicit SwitchProgram(std::vector<SwitchInstr> instrs);

  [[nodiscard]] const std::vector<SwitchInstr>& instrs() const { return instrs_; }
  [[nodiscard]] std::size_t size() const { return instrs_.size(); }
  [[nodiscard]] const SwitchInstr& at(std::size_t pc) const { return instrs_[pc]; }

  /// Validation: program fits in switch imem, branch targets are in range,
  /// register indices are valid, and within each instruction no destination
  /// (per network) is written twice and the $csto source is not consumed by
  /// both a route and a `recv`. Returns an error description or empty string.
  [[nodiscard]] static std::string validate(const std::vector<SwitchInstr>& instrs);

 private:
  std::vector<SwitchInstr> instrs_;
};

/// Convenience builder with label resolution (used by the schedule compiler).
class SwitchProgramBuilder {
 public:
  /// Appends an instruction; returns its index.
  std::size_t emit(SwitchInstr instr);
  std::size_t emit_route(std::vector<Move> moves);
  std::size_t emit_nop() { return emit({}); }
  std::size_t emit_halt();

  /// Defines `label` at the next instruction index.
  void define_label(const std::string& label);
  /// Emits an op whose imm is the (possibly forward) label target.
  std::size_t emit_branch(CtrlOp op, std::uint8_t reg, const std::string& label);
  std::size_t emit_jump(const std::string& label);

  [[nodiscard]] std::size_t next_index() const { return instrs_.size(); }

  /// Resolves labels and validates; aborts on malformed programs (compiler
  /// bugs, not user input).
  [[nodiscard]] SwitchProgram build();

 private:
  struct Fixup {
    std::size_t instr_index;
    std::string label;
  };
  std::vector<SwitchInstr> instrs_;
  std::vector<Fixup> fixups_;
  std::vector<std::pair<std::string, std::size_t>> labels_;
};

/// Assembles the textual form described above. Returns the program or sets
/// `error` (line-numbered message) and returns an empty program.
SwitchProgram assemble(const std::string& text, std::string* error);

/// Textual form of a program; `disassemble(assemble(t))` round-trips
/// modulo labels (branch targets are printed as absolute indices).
std::string disassemble(const SwitchProgram& program);
std::string to_string(const SwitchInstr& instr);

}  // namespace raw::sim
