#include "common/log.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace raw::common {
namespace {

TEST(LogTest, ParseNamedLevels) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none", LogLevel::kWarn), LogLevel::kOff);
}

TEST(LogTest, ParseNumericLevels) {
  EXPECT_EQ(parse_log_level("0", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("4", LogLevel::kWarn), LogLevel::kOff);
}

TEST(LogTest, ParseFallsBackOnGarbage) {
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("loud", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(parse_log_level("7", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("10", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(LogTest, EnvOverridesLevel) {
  const LogLevel saved = log_level();

  ASSERT_EQ(setenv("RAW_LOG_LEVEL", "debug", 1), 0);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  ASSERT_EQ(setenv("RAW_LOG_LEVEL", "off", 1), 0);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);

  // Unset: the last applied level sticks (no silent reset).
  ASSERT_EQ(unsetenv("RAW_LOG_LEVEL"), 0);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);

  // Unparsable values leave the level untouched.
  ASSERT_EQ(setenv("RAW_LOG_LEVEL", "extremely-loud", 1), 0);
  set_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);

  unsetenv("RAW_LOG_LEVEL");
  set_log_level(saved);
}

TEST(LogTest, SetLogLevelStillWins) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(saved);
}

}  // namespace
}  // namespace raw::common
