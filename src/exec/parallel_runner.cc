#include "exec/parallel_runner.h"

#include "common/assert.h"
#include "common/profiler.h"
#include "sim/chip.h"
#include "sim/fault_plan.h"

namespace raw::exec {

ParallelRunner::ParallelRunner(sim::Chip& chip, int threads)
    : chip_(chip),
      partition_(Partition::build(chip, resolve_threads(threads))),
      barrier_(partition_.workers()),
      sense_(static_cast<std::size_t>(partition_.workers())),
      progress_(static_cast<std::size_t>(partition_.workers())) {
  const int n = partition_.workers();

  // One dirty/wake lane per worker. Extra lanes are harmless to the chip's
  // own serial loop (it drains them all); lane w is only ever filled by the
  // thread running stripe w.
  chip_.engine_.lanes.resize(static_cast<std::size_t>(n));

  if (n > 1) {
    // Static links whose endpoint switches land on different workers: their
    // lazy epoch refresh would race between the two owners, so phase B
    // pre-stamps them, and blocked writers must not park on them (the
    // reader-side wake happens inside phase C). Edge and dynamic-network
    // channels need neither: their off-stripe endpoint (a device, or the
    // dynamic network) runs in a serial phase, barrier-separated from C.
    const auto worker_of = [&](int t) {
      for (int w = 0; w < n; ++w) {
        const Stripe& s = partition_.stripe(w);
        if (t >= s.tile_begin && t < s.tile_end) return w;
      }
      RAW_UNREACHABLE("tile outside every stripe");
    };
    const sim::GridShape shape = chip_.shape();
    for (int t = 0; t < shape.num_tiles(); ++t) {
      for (const sim::Dir d : sim::kMeshDirs) {
        const sim::TileCoord nb = sim::GridShape::neighbor(shape.coord(t), d);
        if (!shape.contains(nb)) continue;
        if (worker_of(shape.index(nb)) == worker_of(t)) continue;
        for (int net = 0; net < sim::kNumStaticNets; ++net) {
          sim::Channel* ch = chip_.out_link(net, t, d);
          ch->set_shared(true);
          boundary_channels_.push_back(ch);
        }
      }
    }
  }

  threads_.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (int w = 1; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Un-flag the boundary channels so a later serial user of the same chip
  // regains full parking freedom on them.
  for (sim::Channel* ch : boundary_channels_) ch->set_shared(false);
}

void ParallelRunner::set_tracer(common::PacketTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->configure_shards(workers());
}

void ParallelRunner::set_profiler(common::Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr) profiler_->ensure_workers(workers());
  chip_.set_profiler(profiler);
}

void ParallelRunner::run(common::Cycle cycles) {
  if (workers() == 1) {  // serial fast path: the engine adds nothing
    chip_.run(cycles);
    return;
  }
  dispatch_and_join(Mode::kRun, cycles, nullptr);
}

bool ParallelRunner::run_until(const std::function<bool()>& pred,
                               common::Cycle max_cycles) {
  if (workers() == 1) {
    return chip_.run_until(pred, max_cycles);
  }
  dispatch_and_join(Mode::kRunUntil, max_cycles, &pred);
  return result_;
}

void ParallelRunner::dispatch_and_join(Mode mode, common::Cycle limit,
                                       const std::function<bool()>* pred) {
  // Run-boundary revalidation, exactly as in Chip::run/run_until: external
  // mutations since the last run (programs loaded, test channel writes) are
  // picked up by returning everyone to the runnable set.
  chip_.wake_all_parked();

  staging_ = tracer_ != nullptr && tracer_->enabled();
  if (staging_) tracer_->set_staging(true);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    mode_ = mode;
    limit_ = limit;
    pred_ = pred;
    stop_.store(false, std::memory_order_relaxed);
    ++job_gen_;
  }
  cv_.notify_all();

  // The calling thread is worker 0; when execute(0) returns, every shared
  // write by the helper workers is ordered before us by the final barrier.
  result_ = execute(0);

  if (staging_) tracer_->set_staging(false);
  staging_ = false;

  // Settle parked agents' catch-up counters so observers between runs see
  // exactly what a dense engine would have counted.
  chip_.settle_parked();
}

void ParallelRunner::worker_main(int wid) {
  common::PacketTracer::bind_thread_shard(wid);
  sim::t_engine_lane = wid;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || job_gen_ != seen; });
      if (shutdown_) return;
      seen = job_gen_;
    }
    (void)execute(wid);
  }
}

bool ParallelRunner::execute(int wid) {
  if (wid == 0) {
    common::PacketTracer::bind_thread_shard(0);
    sim::t_engine_lane = 0;
  }
  common::Profiler* const prof = profiler_;
  common::Profiler::bind_worker(wid);

  const Stripe& stripe = partition_.stripe(wid);
  sim::DynamicNetwork* const dyn = chip_.dynamic_network();
  bool& sense = sense_[static_cast<std::size_t>(wid)].value;
  const Mode mode = mode_;
  const common::Cycle limit = limit_;
  bool fired = false;

  // Barrier arrivals, timed into this worker's barrier-wait accumulator and
  // histogram when a profiler is attached (the dominant cost of a poorly
  // balanced cycle is exactly this wait).
  const auto barrier_wait = [&] {
    if (prof == nullptr) {
      barrier_.arrive_and_wait(sense);
      return;
    }
    const std::uint64_t t0 = common::Profiler::now_ns();
    barrier_.arrive_and_wait(sense);
    prof->record_barrier_wait(wid, common::Profiler::now_ns() - t0);
  };

  for (common::Cycle i = 0; i < limit; ++i) {
    if (mode == Mode::kRunUntil) {
      // [pred] Worker 0 decides; the barrier publishes the decision.
      if (wid == 0) {
        common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
        if ((*pred_)()) stop_.store(true, std::memory_order_relaxed);
      }
      barrier_wait();
      if (stop_.load(std::memory_order_relaxed)) {
        fired = true;
        break;
      }
    }

    // B: serial on worker 0 — exactly the pre-stepping work of
    // Chip::step_cycle. Dense-mode transitions empty the parked set first;
    // fault injection and device stepping are inherently global (RNG draws,
    // cross-port queues); and the cross-stripe channels are epoch-stamped
    // here so phase C's concurrent touches of them are pure reads.
    if (wid == 0) {
      common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
      const bool dense = chip_.dense_cycle();
      if (prof != nullptr) {
        if (dense) {
          prof->count_dense_sweep();
        } else {
          prof->count_sparse_cycle();
        }
      }
      if (dense) {
        common::ProfScope pw(prof, common::ProfPhase::kParkWake);
        chip_.wake_all_parked();
      }
      if (sim::FaultPlan* faults = chip_.fault_plan()) faults->step(chip_);
      for (sim::Device* d : chip_.devices()) d->step(chip_);
      for (sim::Channel* ch : boundary_channels_) ch->refresh();
    }
    barrier_wait();

    // C: tile stepping over the runnable set, striped. Reads of fault/trace
    // state written in B are ordered by the barrier above.
    {
      common::ProfScope ps(prof, common::ProfPhase::kCompute);
      chip_.step_agents(stripe.tile_begin, stripe.tile_end, chip_.dense_cycle());
    }
    barrier_wait();

    // D: dynamic-network routing touches queues across the whole mesh, so
    // it runs serial between tile stepping and commit, as in
    // Chip::step_cycle (and self-skips while nothing is in flight).
    if (dyn != nullptr) {
      if (wid == 0) {
        common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
        dyn->step();
      }
      barrier_wait();
    }

    // E: drain our own dirty lane (a channel is staged by exactly one
    // worker per cycle, so the lanes partition the dirty set); per-worker
    // progress OR. The stats pass needs every commit to have landed, so it
    // runs behind one more barrier — only when stats are on at all.
    {
      common::ProfScope ps(prof, common::ProfPhase::kChannelCommit);
      progress_[static_cast<std::size_t>(wid)].value =
          chip_.commit_lane(static_cast<std::size_t>(wid));
    }
    if (chip_.engine_.stats_channels > 0) {
      barrier_wait();
      common::ProfScope ps(prof, common::ProfPhase::kStats);
      chip_.sample_stats_range(stripe.chan_begin, stripe.chan_end);
    }
    barrier_wait();

    // F: close the cycle on worker 0: reduce progress, return woken agents
    // to the runnable set, advance the cycle counter. No trailing barrier:
    // helper workers race ahead only as far as the next cycle's phase B
    // barrier, and every phase that reads F's effects sits behind it. (The
    // flight recorder inside finish_cycle reads the helpers' relaxed
    // accumulators concurrently by design.)
    if (wid == 0) {
      common::ProfScope ps(prof, common::ProfPhase::kSerialSection);
      bool any = false;
      for (const PaddedBool& p : progress_) any |= p.value;
      {
        common::ProfScope pw(prof, common::ProfPhase::kParkWake);
        chip_.apply_wakes();
      }
      chip_.finish_cycle(any);
      if (staging_) tracer_->merge_staged();
    }
  }

  // Termination barrier: worker 0 returns to the caller (which may detach or
  // destroy the profiler) only after every helper has fully left its last
  // *timed* barrier wait above. Deliberately untimed — nothing after it
  // touches the profiler, so there is no tail to race with.
  barrier_.arrive_and_wait(sense);

  if (mode == Mode::kRunUntil && wid == 0 && !fired) {
    fired = (*pred_)();  // matches Chip::run_until's final check
  }
  return fired;
}

}  // namespace raw::exec
