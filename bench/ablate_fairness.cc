// Experiment E9 — §5.4: fairness of the Rotating Crossbar.
//
// "When there is no global control over the transmission of packets,
// upstream crossbar tiles can flood the static network and prevent
// downstream tiles from sending data." We compare the rotating token with a
// frozen token (fixed-priority arbitration, the non-token strawman) under
// full output contention: all four inputs flood output 2 at line rate.
#include <cstdio>

#include "common/stats.h"
#include "router/raw_router.h"

namespace {

struct FairnessResult {
  double share[4] = {};
  double jain = 0.0;
  double gbps = 0.0;
};

FairnessResult run(bool rotate, std::array<std::uint32_t, 4> weights) {
  raw::router::RouterConfig cfg;
  cfg.runtime.rotate_token = rotate;
  cfg.runtime.token_weights = weights;
  raw::net::TrafficConfig t;
  t.num_ports = 4;
  t.pattern = raw::net::DestPattern::kHotspot;
  t.hotspot_port = 2;
  t.hotspot_fraction = 1.0;
  t.size = raw::net::SizeDist::kFixed;
  t.fixed_bytes = 256;
  raw::router::RawRouter router(cfg, raw::net::RouteTable::simple4(), t, 21);
  router.run(200000);

  FairnessResult res;
  double per_src[4];
  double total = 0.0;
  for (int s = 0; s < 4; ++s) {
    per_src[s] = static_cast<double>(router.output(2).delivered_from(s));
    total += per_src[s];
  }
  for (int s = 0; s < 4; ++s) res.share[s] = total > 0 ? per_src[s] / total : 0;
  res.jain = raw::common::jain_fairness(per_src, 4);
  res.gbps = router.gbps();
  return res;
}

void report(const char* name, const FairnessResult& r) {
  std::printf("%-26s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.3f %8.2f\n", name,
              100 * r.share[0], 100 * r.share[1], 100 * r.share[2],
              100 * r.share[3], r.jain, r.gbps);
}

}  // namespace

int main() {
  std::printf("Section 5.4: fairness under full output contention\n");
  std::printf("(all four inputs flood output 2 with 256-byte packets)\n\n");
  std::printf("%-26s %8s %8s %8s %8s %8s %8s\n", "arbitration", "in0", "in1",
              "in2", "in3", "Jain", "Gbps");

  report("rotating token (thesis)", run(true, {1, 1, 1, 1}));
  report("frozen token (priority)", run(false, {1, 1, 1, 1}));
  report("weighted token 4:2:1:1", run(true, {4, 2, 1, 1}));

  std::printf(
      "\nreading: the rotating token splits the contended output evenly\n"
      "(Jain ~1.0, each input sends at least once every four quanta); a\n"
      "frozen token starves the downstream inputs; weighted tokens (§8.7)\n"
      "turn the same mechanism into proportional QoS shares.\n");
  return 0;
}
