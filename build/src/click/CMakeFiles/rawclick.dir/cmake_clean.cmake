file(REMOVE_RECURSE
  "CMakeFiles/rawclick.dir/click_router.cc.o"
  "CMakeFiles/rawclick.dir/click_router.cc.o.d"
  "CMakeFiles/rawclick.dir/element.cc.o"
  "CMakeFiles/rawclick.dir/element.cc.o.d"
  "CMakeFiles/rawclick.dir/elements.cc.o"
  "CMakeFiles/rawclick.dir/elements.cc.o.d"
  "librawclick.a"
  "librawclick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawclick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
