#include "fabric/scheduler.h"

#include <algorithm>

#include "common/assert.h"

namespace raw::fabric {
namespace {

// Marks inputs/outputs occupied by held (mid-packet) connections.
void seed_held(const Matching& held, Matching& result, std::vector<bool>& in_busy,
               std::vector<bool>& out_busy) {
  for (std::size_t i = 0; i < held.size(); ++i) {
    if (held[i] >= 0) {
      result[i] = held[i];
      in_busy[i] = true;
      out_busy[static_cast<std::size_t>(held[i])] = true;
    }
  }
}

}  // namespace

IslipScheduler::IslipScheduler(int ports, int iterations)
    : ports_(ports),
      iterations_(iterations),
      grant_ptr_(static_cast<std::size_t>(ports), 0),
      accept_ptr_(static_cast<std::size_t>(ports), 0) {
  RAW_ASSERT(ports > 0 && iterations > 0);
}

Matching IslipScheduler::match(const QueueSnapshot& q, const Matching& held) {
  const auto n = static_cast<std::size_t>(ports_);
  Matching result(n, -1);
  std::vector<bool> in_busy(n, false);
  std::vector<bool> out_busy(n, false);
  seed_held(held, result, in_busy, out_busy);

  for (int iter = 0; iter < iterations_; ++iter) {
    // Step 1 (request) is implicit in the VOQ snapshot.
    // Step 2: each unmatched output grants the requesting input next in its
    // round-robin schedule from the grant pointer.
    std::vector<int> granted_to(n, -1);  // per output: granted input
    for (int out = 0; out < ports_; ++out) {
      if (out_busy[static_cast<std::size_t>(out)]) continue;
      for (int k = 0; k < ports_; ++k) {
        const int in =
            static_cast<int>((grant_ptr_[static_cast<std::size_t>(out)] +
                              static_cast<std::uint32_t>(k)) %
                             static_cast<std::uint32_t>(ports_));
        if (in_busy[static_cast<std::size_t>(in)]) continue;
        if (q.voq(in, out) == 0) continue;
        granted_to[static_cast<std::size_t>(out)] = in;
        break;
      }
    }
    // Step 3: each input accepts the granting output next in its round-robin
    // schedule from the accept pointer.
    bool any = false;
    for (int in = 0; in < ports_; ++in) {
      if (in_busy[static_cast<std::size_t>(in)]) continue;
      int accepted = -1;
      for (int k = 0; k < ports_; ++k) {
        const int out =
            static_cast<int>((accept_ptr_[static_cast<std::size_t>(in)] +
                              static_cast<std::uint32_t>(k)) %
                             static_cast<std::uint32_t>(ports_));
        if (granted_to[static_cast<std::size_t>(out)] == in) {
          accepted = out;
          break;
        }
      }
      if (accepted < 0) continue;
      result[static_cast<std::size_t>(in)] = accepted;
      in_busy[static_cast<std::size_t>(in)] = true;
      out_busy[static_cast<std::size_t>(accepted)] = true;
      any = true;
      // Pointers are only updated after the first iteration (§2.2.2); this
      // is what gives iSLIP its desynchronization property.
      if (iter == 0) {
        accept_ptr_[static_cast<std::size_t>(in)] =
            (static_cast<std::uint32_t>(accepted) + 1) %
            static_cast<std::uint32_t>(ports_);
        grant_ptr_[static_cast<std::size_t>(accepted)] =
            (static_cast<std::uint32_t>(in) + 1) %
            static_cast<std::uint32_t>(ports_);
      }
    }
    if (!any) break;  // converged
  }
  return result;
}

FifoHolScheduler::FifoHolScheduler(int ports)
    : ports_(ports), grant_ptr_(static_cast<std::size_t>(ports), 0) {
  RAW_ASSERT(ports > 0);
}

Matching FifoHolScheduler::match(const QueueSnapshot& q, const Matching& held) {
  const auto n = static_cast<std::size_t>(ports_);
  Matching result(n, -1);
  std::vector<bool> in_busy(n, false);
  std::vector<bool> out_busy(n, false);
  seed_held(held, result, in_busy, out_busy);

  for (int out = 0; out < ports_; ++out) {
    if (out_busy[static_cast<std::size_t>(out)]) continue;
    for (int k = 0; k < ports_; ++k) {
      const int in = static_cast<int>((grant_ptr_[static_cast<std::size_t>(out)] +
                                       static_cast<std::uint32_t>(k)) %
                                      static_cast<std::uint32_t>(ports_));
      if (in_busy[static_cast<std::size_t>(in)]) continue;
      if (q.hol(in) != out) continue;  // only the HOL cell may bid
      result[static_cast<std::size_t>(in)] = out;
      in_busy[static_cast<std::size_t>(in)] = true;
      out_busy[static_cast<std::size_t>(out)] = true;
      grant_ptr_[static_cast<std::size_t>(out)] =
          (static_cast<std::uint32_t>(in) + 1) % static_cast<std::uint32_t>(ports_);
      break;
    }
  }
  return result;
}

RandomMaximalScheduler::RandomMaximalScheduler(int ports, std::uint64_t seed)
    : ports_(ports), rng_(seed) {
  RAW_ASSERT(ports > 0);
}

Matching RandomMaximalScheduler::match(const QueueSnapshot& q, const Matching& held) {
  const auto n = static_cast<std::size_t>(ports_);
  Matching result(n, -1);
  std::vector<bool> in_busy(n, false);
  std::vector<bool> out_busy(n, false);
  seed_held(held, result, in_busy, out_busy);

  // Visit inputs in random order; each picks a random requested free output.
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng_.below(i)]);
  }
  for (const int in : order) {
    if (in_busy[static_cast<std::size_t>(in)]) continue;
    std::vector<int> candidates;
    for (int out = 0; out < ports_; ++out) {
      if (!out_busy[static_cast<std::size_t>(out)] && q.voq(in, out) > 0) {
        candidates.push_back(out);
      }
    }
    if (candidates.empty()) continue;
    const int out = candidates[rng_.below(candidates.size())];
    result[static_cast<std::size_t>(in)] = out;
    in_busy[static_cast<std::size_t>(in)] = true;
    out_busy[static_cast<std::size_t>(out)] = true;
  }
  return result;
}

}  // namespace raw::fabric
