// Declarative cluster topologies over 4-port router chips.
//
// Topology::build maps a ClusterConfig onto concrete wiring: every chip
// port is assigned a role (host line, inter-chip trunk, or unused), every
// trunk is expanded into two unidirectional link plans, every host line
// gets a global host id, and chip-local forwarding is precomputed as a
// next-hop table (shortest path with destination-hash ECMP over equal-cost
// trunk ports) plus a host-to-host hop-count matrix the egress cards use to
// validate the per-chip TTL decrements end to end.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/cluster_config.h"

namespace raw::cluster {

enum class PortRole : std::uint8_t {
  kHost,    // host line: cluster input + output cards attach here
  kTrunk,   // inter-chip trunk: trunk egress + ingress cards attach here
  kUnused,  // wired to nothing; the route tables never point at it
};

/// One direction of an inter-chip trunk: words leave `src_chip` through
/// port `src_port`'s egress edge and arrive at `dst_chip` port `dst_port`'s
/// ingress edge. A full-duplex trunk contributes two of these.
struct LinkPlan {
  int src_chip = -1;
  int src_port = -1;
  int dst_chip = -1;
  int dst_port = -1;
};

/// One host line: global host id = index into Topology::hosts.
struct HostPlan {
  int chip = -1;
  int port = -1;
};

struct Topology {
  int num_chips = 0;
  std::vector<std::array<PortRole, 4>> roles;  // [chip][port]
  std::vector<LinkPlan> links;                 // unidirectional
  std::vector<HostPlan> hosts;                 // host id -> attachment

  /// next_hop[chip][host]: local output port toward `host` (the host port
  /// itself on its home chip; otherwise a trunk port on a shortest path,
  /// picked by destination hash among equal-cost candidates).
  std::vector<std::vector<int>> next_hop;
  /// hops[src_host][dst_host]: chips traversed end to end (>= 1; each chip
  /// decrements TTL exactly once).
  std::vector<std::vector<int>> hops;

  /// host id of the host attached at (chip, port), or -1.
  [[nodiscard]] int host_at(int chip, int port) const;
  /// index into `links` of the plan leaving (chip, port), or -1.
  [[nodiscard]] int link_from(int chip, int port) const;
  /// index into `links` of the plan arriving at (chip, port), or -1.
  [[nodiscard]] int link_into(int chip, int port) const;
  /// The reverse direction of unidirectional link `l` (same trunk), or -1.
  [[nodiscard]] int reverse_link(int l) const;

  /// Builds the wiring for `cfg` (cfg.validate() must have passed).
  static Topology build(const ClusterConfig& cfg);

  /// Fail-over routing: next_hop recomputed over the surviving fabric.
  struct RerouteResult {
    /// next_hop[chip][host]: local output port toward `host`, or -1 when no
    /// surviving path exists (rows of dead chips are all -1). Survivors use
    /// the same shortest-path + destination-hash ECMP rule as build(), so
    /// the result is deterministic for a given failure set.
    std::vector<std::vector<int>> next_hop;
    /// Hosts some alive chip can no longer reach (sorted): hosts on dead
    /// chips, plus hosts severed from part of the fabric by a partition.
    std::vector<int> unreachable_hosts;
  };

  /// Recomputes routes excluding `link_dead` links (indexed like `links`),
  /// `chip_dead` chips, and every link touching a dead chip. Unlike
  /// build(), a disconnected survivor fabric is not an error: unreachable
  /// (chip, host) pairs get next_hop -1 and the host is reported.
  [[nodiscard]] RerouteResult reroute(const std::vector<bool>& link_dead,
                                      const std::vector<bool>& chip_dead) const;
};

}  // namespace raw::cluster
