// Cluster chaos harness: every standard mix passes with reliable links and
// fail-over armed, repro bundles round-trip through JSON and replay
// bit-identically, and the validation rules catch what they claim to.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/chaos.h"

namespace raw::cluster {
namespace {

ClusterChaosSpec quick_spec(std::uint64_t seed) {
  ClusterChaosSpec spec;
  spec.seed = seed;
  spec.num_chips = 4;
  spec.run_cycles = 8000;
  spec.drain_cycles = 400000;
  spec.reliable_links = true;
  spec.failover = true;
  return spec;
}

TEST(ClusterChaosTest, MixNamesRoundTripThroughParse) {
  for (const ClusterChaosMix& mix : standard_cluster_mixes()) {
    ClusterChaosMix parsed;
    ASSERT_TRUE(parse_cluster_mix(mix.name(), &parsed)) << mix.name();
    EXPECT_EQ(parsed.name(), mix.name());
  }
  ClusterChaosMix out;
  EXPECT_FALSE(parse_cluster_mix("meteor", &out));
  EXPECT_FALSE(parse_cluster_mix("", &out));
}

TEST(ClusterChaosTest, StandardMixesPassWithRecoveryArmed) {
  for (const ClusterChaosMix& mix : standard_cluster_mixes()) {
    ClusterChaosSpec spec = quick_spec(3);
    spec.mix = mix;
    const ClusterChaosResult r = run_cluster_chaos(spec);
    EXPECT_TRUE(r.pass) << mix.name() << ": " << r.failure;
    EXPECT_GT(r.delivered, 0u) << mix.name();
    if (mix.any()) {
      EXPECT_GT(r.faults_injected, 0u) << mix.name();
    }
    if (mix.permanent()) {
      EXPECT_TRUE(r.degraded) << mix.name();
      EXPECT_GE(r.failover_generation, 1) << mix.name();
    } else {
      EXPECT_FALSE(r.degraded) << mix.name();
    }
  }
}

TEST(ClusterChaosTest, CorruptingMixDoesZeroDamageOnReliableLinks) {
  ClusterChaosSpec spec = quick_spec(5);
  spec.mix.corrupts = true;
  spec.faults_per_kind = 6;
  const ClusterChaosResult r = run_cluster_chaos(spec);
  EXPECT_TRUE(r.pass) << r.failure;
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.delivered_corrupt, 0u);
}

TEST(ClusterChaosTest, RunsAreDeterministicAcrossWorkerCounts) {
  ClusterChaosSpec spec = quick_spec(7);
  spec.mix.corrupts = true;
  spec.mix.cuts = true;
  spec.threads = 1;
  const ClusterChaosResult serial = run_cluster_chaos(spec);
  for (const int workers : {2, 4}) {
    spec.threads = workers;
    const ClusterChaosResult r = run_cluster_chaos(spec);
    EXPECT_EQ(r.digest, serial.digest) << workers << " workers";
    EXPECT_EQ(r.delivered, serial.delivered) << workers << " workers";
    EXPECT_EQ(r.degraded, serial.degraded) << workers << " workers";
  }
}

TEST(ClusterChaosTest, ReproBundleRoundTripsThroughJson) {
  ClusterChaosSpec spec = quick_spec(11);
  spec.mix.stalls = true;
  spec.mix.freezes = true;
  ClusterChaosRepro repro;
  repro.spec = spec;
  repro.events = make_cluster_fault_events(spec);
  const ClusterChaosResult r = run_cluster_chaos_events(spec, repro.events);
  repro.pass = r.pass;
  repro.failure = r.failure;
  repro.degraded = r.degraded;
  repro.drained = r.drained;
  repro.digest = r.digest;

  const std::string json = to_json(repro);
  ClusterChaosRepro parsed;
  std::string error;
  ASSERT_TRUE(from_json(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.spec.seed, spec.seed);
  EXPECT_EQ(parsed.spec.mix.name(), spec.mix.name());
  EXPECT_EQ(parsed.spec.num_chips, spec.num_chips);
  EXPECT_EQ(parsed.spec.reliable_links, spec.reliable_links);
  EXPECT_EQ(parsed.spec.failover, spec.failover);
  ASSERT_EQ(parsed.events.size(), repro.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(static_cast<int>(parsed.events[i].kind),
              static_cast<int>(repro.events[i].kind));
    EXPECT_EQ(parsed.events[i].at, repro.events[i].at);
    EXPECT_EQ(parsed.events[i].link, repro.events[i].link);
    EXPECT_EQ(parsed.events[i].chip, repro.events[i].chip);
  }
  EXPECT_EQ(parsed.digest, repro.digest);
  EXPECT_EQ(parsed.degraded, repro.degraded);

  // The parsed bundle replays bit-identically.
  std::string why;
  const ClusterChaosResult replayed = replay_cluster_repro(parsed, &why);
  EXPECT_TRUE(why.empty()) << why;
  EXPECT_EQ(replayed.digest, repro.digest);
}

TEST(ClusterChaosTest, ReplayFlagsATamperedDigest) {
  ClusterChaosSpec spec = quick_spec(13);
  spec.mix.corrupts = true;
  ClusterChaosRepro repro;
  repro.spec = spec;
  repro.events = make_cluster_fault_events(spec);
  const ClusterChaosResult r = run_cluster_chaos_events(spec, repro.events);
  repro.degraded = r.degraded;
  repro.drained = r.drained;
  repro.digest = r.digest ^ 1;  // tamper
  std::string why;
  const ClusterChaosResult replayed = replay_cluster_repro(repro, &why);
  EXPECT_FALSE(replayed.pass);
  EXPECT_EQ(why, "digest mismatch");
}

TEST(ClusterChaosTest, FromJsonRejectsGarbage) {
  ClusterChaosRepro out;
  std::string error;
  EXPECT_FALSE(from_json("not json", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(from_json("{\"schema\": \"wrong/v9\"}", &out, &error));
}

TEST(ClusterChaosTest, BoundedSweepPasses) {
  const ClusterChaosSweepSummary summary = cluster_chaos_sweep(
      /*num_seeds=*/1, /*run_cycles=*/6000, /*num_chips=*/4, /*threads=*/2);
  EXPECT_TRUE(summary.all_passed());
  for (const ClusterChaosResult& r : summary.results) {
    EXPECT_TRUE(r.pass) << r.mix << " seed " << r.seed << ": " << r.failure;
  }
}

}  // namespace
}  // namespace raw::cluster
