// Declarative description of a multi-chip cluster fabric: N rotating-
// crossbar router chips whose line-card ports are wired together through
// seeded, token-throttled inter-chip links under one of three topologies.
// The config is pure data; ClusterFabric turns it into chips, links and
// cards, and Topology::build turns it into port roles and routes.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster_faults.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/traffic.h"
#include "router/tile_programs.h"

namespace raw::cluster {

enum class TopologyKind : std::uint8_t {
  kPointToPoint,  // chain: chip i <-> chip i+1, end ports become hosts
  kLeafSpine,     // single-spine star, or a spine ring with 2 leaf ports
                  // per spine once one spine cannot fan out far enough
  kFatTree,       // k-ary fat-tree (k = 2 or 4): edge/aggregation/core
};

struct ClusterConfig {
  int num_chips = 2;
  TopologyKind topology = TopologyKind::kLeafSpine;
  /// Fat-tree arity; only read when topology == kFatTree. k=2 needs exactly
  /// 5 chips (1 core, 2 pods of 1 agg + 1 edge), k=4 exactly 20.
  int fat_tree_k = 2;

  /// One-way inter-chip link latency in chip cycles. Also the conservative
  /// lookahead: chips advance independently for up to this many cycles
  /// between synchronisation epochs, so it must be >= 1.
  common::Cycle link_latency = 16;
  /// Token-bucket bandwidth throttle: a link earns `throttle_numer` word
  /// credits every `throttle_denom` cycles (burst cap = numer), so 1/1 is
  /// full line rate and 1/4 a quarter-rate trunk. Mirrors the
  /// FireSim-style numer/denom link throttle.
  std::uint64_t throttle_numer = 1;
  std::uint64_t throttle_denom = 1;
  /// Words buffered in one link direction; a full link backpressures the
  /// sending chip's trunk card.
  std::size_t link_capacity_words = 256;
  /// Deterministic per-word latency jitter amplitude in cycles (uniform in
  /// [0, jitter], monotonically clamped so words never reorder). 0 = none.
  common::Cycle link_jitter = 0;
  /// Cycles per synchronisation epoch. 0 (default) resolves to
  /// link_latency — the largest window that keeps cross-chip timing exact;
  /// a nonzero value must not exceed link_latency.
  common::Cycle epoch_cycles = 0;
  /// Thread-per-chip worker threads. 0 resolves via RAWSIM_THREADS and
  /// falls back to serial; any resolved count is digest-identical to the
  /// serial epoch schedule.
  int threads = 0;

  /// CRC+seq reliable trunk links: corrupted words become retransmits with
  /// zero damage instead of propagating into the chips. Off by default (and
  /// bit-neutral when off): the faultless digests match builds that predate
  /// the layer.
  bool reliable_links = false;
  /// Retransmits per word before a reliable link gives up and delivers the
  /// corrupt word. Must be >= 1 when reliable_links is on.
  std::uint32_t link_retransmit_limit = 3;
  /// Delivery slip per NACK round trip, in cycles.
  common::Cycle link_retransmit_rtt = 4;

  /// Epoch-granular cluster watchdog + deterministic fail-over: a confirmed
  /// permanent link cut or chip death triggers rerouting around the failed
  /// element and the run continues degraded. Off by default.
  bool failover = false;
  /// Cycles between watchdog samples of per-chip and per-link health. Must
  /// be positive when failover is on (detection latency is one interval).
  common::Cycle watchdog_interval = 512;

  /// Scheduled inter-chip faults, applied at epoch barriers (empty = none,
  /// zero cost). Targets are range-checked by validate().
  std::vector<ClusterFaultEvent> faults;

  /// Per-chip settings, mirroring RouterConfig.
  std::size_t link_fifo_depth = 8;
  std::size_t line_card_queue_words = 1 << 15;
  router::RuntimeConfig runtime;

  /// Host traffic template. num_ports and group_of are overwritten by the
  /// fabric (one port per host, grouped by chip); remote_fraction sets the
  /// cross-chip share of destination draws.
  net::TrafficConfig traffic;

  /// Rejects nonsensical knobs (zero chips, zero link latency, a throttle
  /// that exceeds line rate, an epoch longer than the lookahead window, a
  /// malformed fat-tree, a zero retransmit budget on reliable links, a zero
  /// watchdog interval with fail-over armed, a fault event targeting a link
  /// or chip outside the topology). Throws std::invalid_argument naming the
  /// field.
  void validate() const;
};

/// Per-chip master seed: every independent stream a chip owns (its traffic
/// generator, its fault plan) derives from this, so no two chips — and no
/// two cluster seeds — share an RNG stream.
inline std::uint64_t chip_seed(std::uint64_t cluster_seed, int chip_id) {
  return common::mix64(cluster_seed ^
                       common::mix64(static_cast<std::uint64_t>(chip_id) + 1));
}

/// Per-link jitter seed, salted away from the chip-seed family.
inline std::uint64_t link_seed(std::uint64_t cluster_seed, int link_id) {
  return common::mix64(cluster_seed ^
                       common::mix64(static_cast<std::uint64_t>(link_id) +
                                     std::uint64_t{0x1000001}));
}

}  // namespace raw::cluster
