#include "cluster/cluster_config.h"

#include <stdexcept>
#include <string>

#include "cluster/topology.h"
#include "net/ipv4.h"

namespace raw::cluster {

void ClusterConfig::validate() const {
  if (num_chips < 2 || num_chips > 32) {
    throw std::invalid_argument(
        "ClusterConfig.num_chips must be in [2, 32] (one chip is not a "
        "cluster; host addressing allots 10.<host>/16 prefixes below 128); "
        "got " + std::to_string(num_chips));
  }
  if (topology == TopologyKind::kFatTree) {
    if (fat_tree_k != 2 && fat_tree_k != 4) {
      throw std::invalid_argument(
          "ClusterConfig.fat_tree_k must be 2 or 4 (the chips have four "
          "ports); got " + std::to_string(fat_tree_k));
    }
    const int needed = 5 * fat_tree_k * fat_tree_k / 4;
    if (num_chips != needed) {
      throw std::invalid_argument(
          "ClusterConfig.num_chips must be exactly " + std::to_string(needed) +
          " for a " + std::to_string(fat_tree_k) +
          "-ary fat-tree (k pods of k edge+agg switches plus (k/2)^2 core); "
          "got " + std::to_string(num_chips));
    }
  }
  if (link_latency == 0) {
    throw std::invalid_argument(
        "ClusterConfig.link_latency must be positive: the latency is the "
        "conservative lookahead window, and a zero window leaves the chips "
        "nothing to advance between epochs");
  }
  if (throttle_numer == 0 || throttle_denom == 0) {
    throw std::invalid_argument(
        "ClusterConfig.throttle_numer/denom must both be positive; got " +
        std::to_string(throttle_numer) + "/" + std::to_string(throttle_denom));
  }
  if (throttle_numer > throttle_denom) {
    throw std::invalid_argument(
        "ClusterConfig.throttle ratio " + std::to_string(throttle_numer) +
        "/" + std::to_string(throttle_denom) +
        " exceeds 1: a trunk cannot run faster than the one-word-per-cycle "
        "line it feeds");
  }
  if (link_capacity_words == 0) {
    throw std::invalid_argument(
        "ClusterConfig.link_capacity_words must be positive: a zero-capacity "
        "link can never carry a word");
  }
  if (epoch_cycles > link_latency) {
    throw std::invalid_argument(
        "ClusterConfig.epoch_cycles (" + std::to_string(epoch_cycles) +
        ") must not exceed link_latency (" + std::to_string(link_latency) +
        "): an epoch longer than the link latency lets a word arrive inside "
        "the epoch it was sent in, breaking the conservative schedule");
  }
  if (threads < 0) {
    throw std::invalid_argument(
        "ClusterConfig.threads must be >= 0 (0 resolves RAWSIM_THREADS); "
        "got " + std::to_string(threads));
  }
  if (link_fifo_depth < net::Ipv4Header::kWords) {
    throw std::invalid_argument(
        "ClusterConfig.link_fifo_depth must be >= " +
        std::to_string(net::Ipv4Header::kWords) +
        " (edge FIFOs hold a full IP header); got " +
        std::to_string(link_fifo_depth));
  }
  if (line_card_queue_words == 0) {
    throw std::invalid_argument(
        "ClusterConfig.line_card_queue_words must be positive: a "
        "zero-capacity card queue drops every packet before it reaches a "
        "chip");
  }
  if (traffic.remote_fraction < 0.0 || traffic.remote_fraction > 1.0) {
    throw std::invalid_argument(
        "ClusterConfig.traffic.remote_fraction must be in [0, 1]; got " +
        std::to_string(traffic.remote_fraction));
  }
  if (reliable_links && link_retransmit_limit == 0) {
    throw std::invalid_argument(
        "ClusterConfig.link_retransmit_limit must be >= 1 when "
        "reliable_links is on: a zero retransmit budget delivers every "
        "corrupt word anyway, which is the unreliable link spelled "
        "expensively");
  }
  if (reliable_links && link_retransmit_rtt == 0) {
    throw std::invalid_argument(
        "ClusterConfig.link_retransmit_rtt must be >= 1 when reliable_links "
        "is on: a retransmit takes at least one cycle of round trip");
  }
  if (failover && watchdog_interval == 0) {
    throw std::invalid_argument(
        "ClusterConfig.watchdog_interval must be positive when failover is "
        "on: the watchdog samples chip and link health once per interval, "
        "and a zero interval never samples at all");
  }
  if (!faults.empty()) {
    // Range-check the fault targets against the topology this config
    // actually builds (every earlier check has passed, so the build is
    // well-defined). A plan that silently targets nothing would report a
    // vacuous chaos pass.
    const Topology topo = Topology::build(*this);
    ClusterFaultPlan plan(faults);
    plan.bind(topo.links.size(), num_chips);  // throws std::invalid_argument
  }
}

}  // namespace raw::cluster
