// Experiment E5 — chapter 6 / Table 6.1: the Rotating Crossbar's
// configuration space and its minimization.
//
// Paper numbers: SPACE = 5^4 x 4 = 2,500 global configurations, ~3.3 switch
// instructions available per configuration before minimization, a
// self-sufficient subset of 32 per-tile configurations after (a ~78x cut).
#include <cstdio>

#include "router/schedule_compiler.h"

int main() {
  using namespace raw::router;
  const Layout layout;
  const ScheduleCompiler compiler(layout);
  const SpaceSummary& s = compiler.space();

  std::printf("Table 6.1 / Sections 6.1-6.2: configuration space minimization\n\n");
  std::printf("  servers: out, cwnext, ccwnext\n");
  std::printf("  clients: 0, in, cwprev, ccwprev\n\n");

  std::printf("%-46s %10s %10s\n", "quantity", "paper", "measured");
  std::printf("%-46s %10s %10llu\n", "global configurations (|Hdr|^4 x |Token|)",
              "2,500", static_cast<unsigned long long>(s.global_configs));
  std::printf("%-46s %10s %10.2f\n",
              "switch imem instructions per global config", "~3.3",
              s.instrs_per_global_config);
  std::printf("%-46s %10s %10llu\n", "minimized self-sufficient subset", "32",
              static_cast<unsigned long long>(s.distinct_tile_configs));
  std::printf("%-46s %10s %10.1f\n", "reduction factor", "~78x",
              s.reduction_factor);
  std::printf("%-46s %10s %10llu\n", "distinct client triples (switch blocks)",
              "-", static_cast<unsigned long long>(s.distinct_blocks));

  const auto cb = compiler.compile_crossbar(0);
  std::printf("%-46s %10s %10zu\n", "compiled crossbar program (instructions)",
              "-", cb.program->size());
  std::printf("%-46s %10s %9.1f%%\n", "switch imem used", "-",
              100.0 * static_cast<double>(cb.program->size()) /
                  static_cast<double>(raw::sim::kSwitchImemWords));

  std::printf("\nthe minimized per-tile configurations "
              "(client assignments with expansion numbers):\n");
  int i = 0;
  for (const TileConfig& tc : s.tile_configs) {
    std::printf("  %2d: %s\n", i++, to_string(tc).c_str());
  }
  return 0;
}
