#include "router/schedule_compiler.h"

#include <algorithm>
#include <map>

#include "common/assert.h"

namespace raw::router {

using sim::CtrlOp;
using sim::Dir;
using sim::Move;
using sim::SwitchInstr;
using sim::SwitchProgramBuilder;

namespace {

/// One stream through a crossbar tile: the server it feeds, the crossbar
/// move realizing it, and the ring distance its words have already
/// travelled (the §6.2 expansion number).
struct Stream {
  int server = 0;  // 0 = out, 1 = cwnext, 2 = ccwnext
  Move move;
  std::uint8_t dist = 0;
};

std::vector<Stream> streams_of(const TileConfig& tc, const CrossbarOrientation& o) {
  std::vector<Stream> streams;
  switch (tc.out) {
    case Client::kNone: break;
    case Client::kIn: streams.push_back({0, {0, o.in, o.out}, 0}); break;
    case Client::kCwPrev:
      streams.push_back({0, {0, o.cw_in, o.out}, tc.out_dist});
      break;
    case Client::kCcwPrev:
      streams.push_back({0, {0, o.ccw_in, o.out}, tc.out_dist});
      break;
  }
  switch (tc.cwnext) {
    case Client::kNone: break;
    case Client::kIn: streams.push_back({1, {0, o.in, o.cw_out}, 0}); break;
    case Client::kCwPrev:
      streams.push_back({1, {0, o.cw_in, o.cw_out}, tc.cw_dist});
      break;
    case Client::kCcwPrev: RAW_UNREACHABLE("ccw stream on cw link");
  }
  switch (tc.ccwnext) {
    case Client::kNone: break;
    case Client::kIn: streams.push_back({2, {0, o.in, o.ccw_out}, 0}); break;
    case Client::kCcwPrev:
      streams.push_back({2, {0, o.ccw_in, o.ccw_out}, tc.ccw_dist});
      break;
    case Client::kCwPrev: RAW_UNREACHABLE("cw stream on ccw link");
  }
  return streams;
}

/// Two bits per position: the server index ending at that phase (3 = none).
std::uint64_t order_code(const std::vector<int>& servers_in_end_order) {
  std::uint64_t code = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    const std::uint64_t s =
        p < servers_in_end_order.size()
            ? static_cast<std::uint64_t>(servers_in_end_order[p])
            : 3u;
    code |= s << (2 * p);
  }
  return code;
}

std::uint64_t block_map_key(std::uint32_t sched_key, std::uint64_t order) {
  return static_cast<std::uint64_t>(sched_key) << 8 | order;
}

}  // namespace

CrossbarSchedule::Dispatch CrossbarSchedule::dispatch_for(
    const TileConfig& tc, const std::array<std::uint32_t, 3>& server_words) const {
  // Gather the present servers with their distances.
  struct End {
    int server;
    std::uint32_t end;  // dist + words (slot where the stream's last word moves)
  };
  std::vector<End> ends;
  const Client clients[3] = {tc.out, tc.cwnext, tc.ccwnext};
  const std::uint8_t dists[3] = {tc.out_dist, tc.cw_dist, tc.ccw_dist};
  std::uint32_t max_dist = 0;
  for (int s = 0; s < 3; ++s) {
    if (clients[s] == Client::kNone) continue;
    const std::uint32_t words = server_words[static_cast<std::size_t>(s)];
    RAW_ASSERT_MSG(words >= 4, "fragment shorter than the pipeline depth");
    ends.push_back({s, dists[s] + words});
    max_dist = std::max(max_dist, static_cast<std::uint32_t>(dists[s]));
  }
  std::sort(ends.begin(), ends.end(), [](const End& a, const End& b) {
    return a.end != b.end ? a.end < b.end : a.server < b.server;
  });

  std::vector<int> order;
  order.reserve(ends.size());
  Dispatch d;
  std::uint32_t prev = max_dist;
  for (std::size_t p = 0; p < ends.size(); ++p) {
    order.push_back(ends[p].server);
    RAW_ASSERT(ends[p].end >= prev);
    d.counts[p] = ends[p].end - prev;
    prev = ends[p].end;
  }

  const auto it = blocks.find(block_map_key(tc.sched_key(), order_code(order)));
  RAW_ASSERT_MSG(it != blocks.end(),
                 "configuration outside the compiled self-sufficient subset");
  d.address = it->second;
  return d;
}

ScheduleCompiler::ScheduleCompiler(const Layout& layout)
    : layout_(layout), space_(enumerate_space(kNumPorts)) {}

CrossbarSchedule ScheduleCompiler::compile_crossbar(int port) const {
  const CrossbarOrientation& o = layout_.orientation(port);
  SwitchProgramBuilder b;

  // --- Per-quantum preamble (phases of Figure 6-2) ---------------------
  // headers-request / headers-send: gather the local header, circulate all
  // four headers clockwise. The send and receive halves are separate
  // instructions; a combined send+receive would wait on its own upstream
  // neighbour's output and deadlock the ring.
  b.define_label("start");
  b.emit_route({Move{0, o.in, Dir::kProc}});                        // hdr0: local
  b.emit_route({Move{0, Dir::kProc, o.cw_out}});                    // send own
  b.emit_route({Move{0, o.cw_in, Dir::kProc},                       // recv n-1,
                Move{0, o.cw_in, o.cw_out}});                       //   forward
  b.emit_route({Move{0, o.cw_in, Dir::kProc},                       // recv n-2,
                Move{0, o.cw_in, o.cw_out}});                       //   forward
  b.emit_route({Move{0, o.cw_in, Dir::kProc}});                     // recv n-3
  // recv-config / choose-new-config: grant back to the ingress, then the
  // processor loads the chosen block address and the three phase counts
  // into the switch registers (§6.5).
  b.emit_route({Move{0, Dir::kProc, o.in_back}});                   // grant
  b.emit({CtrlOp::kRecv, 0, 0, {}});                                // block addr
  b.emit({CtrlOp::kRecv, 1, 0, {}});                                // phase 1
  b.emit({CtrlOp::kRecv, 2, 0, {}});                                // phase 2
  b.emit({CtrlOp::kRecv, 3, 0, {}});                                // phase 3
  b.emit({CtrlOp::kJr, 0, 0, {}});

  // --- route-body blocks ------------------------------------------------
  // One block per minimized configuration (sched_key) and stream-exhaustion
  // order: a prologue staggers stream start-up by expansion number; then
  // one guarded streaming loop per phase, each dropping the stream that
  // ends next. Every stream s moves exactly (prologue slots covering it) +
  // (phase counts until its end) = its own word count.
  CrossbarSchedule sched;
  std::map<std::uint32_t, TileConfig> reps;
  for (const TileConfig& tc : space_.tile_configs) {
    reps.try_emplace(tc.sched_key(), tc);
  }

  int label_seq = 0;
  for (const auto& [key, tc] : reps) {
    const std::vector<Stream> streams = streams_of(tc, o);
    const bool has_desc = tc.out != Client::kNone;

    // All end orders (permutations of the present streams).
    std::vector<int> perm(streams.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
    std::sort(perm.begin(), perm.end());
    do {
      std::vector<int> servers;
      for (const int idx : perm) {
        servers.push_back(streams[static_cast<std::size_t>(idx)].server);
      }
      sched.blocks.emplace(block_map_key(key, order_code(servers)),
                           static_cast<common::Word>(b.next_index()));

      if (has_desc) {
        // Descriptor word ahead of the body stream (length, source, flags).
        b.emit_route({Move{0, Dir::kProc, o.out}});
      }

      // Prologue: slot s moves every stream whose source is within s hops.
      std::uint8_t max_dist = 0;
      for (const Stream& s : streams) max_dist = std::max(max_dist, s.dist);
      for (std::uint8_t slot = 0; slot < max_dist; ++slot) {
        std::vector<Move> set;
        for (const Stream& s : streams) {
          if (s.dist <= slot) set.push_back(s.move);
        }
        if (!set.empty()) b.emit_route(std::move(set));
      }

      // Phases: guarded counted loops over the still-active streams.
      std::vector<bool> active(streams.size(), true);
      for (std::size_t p = 0; p < perm.size(); ++p) {
        std::vector<Move> set;
        for (std::size_t i = 0; i < streams.size(); ++i) {
          if (active[i]) set.push_back(streams[i].move);
        }
        const std::string skip = "skip" + std::to_string(label_seq++);
        const auto reg = static_cast<std::uint8_t>(p + 1);
        b.emit_branch(CtrlOp::kBeqz, reg, skip);
        SwitchInstr loop;
        loop.op = CtrlOp::kBnezd;
        loop.reg = reg;
        loop.imm = static_cast<std::int32_t>(b.next_index());
        loop.moves = std::move(set);
        b.emit(std::move(loop));
        b.define_label(skip);
        active[static_cast<std::size_t>(perm[p])] = false;
      }
      b.emit_jump("start");
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  sched.program = std::make_shared<const sim::SwitchProgram>(b.build());
  return sched;
}

IngressSchedule ScheduleCompiler::compile_ingress(int port) const {
  const PortEdges& e = layout_.edges(port);
  const Dir edge = e.ingress_edge;
  const Dir cb = e.ingress_to_crossbar;
  SwitchProgramBuilder b;

  IngressSchedule sched;
  b.define_label("dispatch");
  b.emit({CtrlOp::kRecv, 0, 0, {}});
  b.emit({CtrlOp::kRecv, 1, 0, {}});
  b.emit({CtrlOp::kJr, 0, 0, {}});

  const auto emit_loop = [&b](Move move) {
    SwitchInstr body;
    body.op = CtrlOp::kBnezd;
    body.reg = 1;
    body.imm = static_cast<std::int32_t>(b.next_index());
    body.moves = {move};
    b.emit(std::move(body));
  };

  sched.ingest_header = static_cast<common::Word>(b.next_index());
  emit_loop(Move{0, edge, Dir::kProc});
  b.emit_jump("dispatch");

  sched.send_header = static_cast<common::Word>(b.next_index());
  b.emit_route({Move{0, Dir::kProc, cb}});  // local header to the crossbar
  b.emit_route({Move{0, cb, Dir::kProc}});  // grant word back
  b.emit_jump("dispatch");

  sched.stream_proc = static_cast<common::Word>(b.next_index());
  emit_loop(Move{0, Dir::kProc, cb});
  b.emit_jump("dispatch");

  sched.stream_edge = static_cast<common::Word>(b.next_index());
  emit_loop(Move{0, edge, cb});
  b.emit_jump("dispatch");

  sched.program = std::make_shared<const sim::SwitchProgram>(b.build());
  return sched;
}

EgressSchedule ScheduleCompiler::compile_egress(int port) const {
  const PortEdges& e = layout_.edges(port);
  const Dir edge = e.egress_edge;
  const Dir cb = e.egress_from_crossbar;
  SwitchProgramBuilder b;

  EgressSchedule sched;
  b.define_label("dispatch");
  b.emit({CtrlOp::kRecv, 0, 0, {}});
  b.emit({CtrlOp::kRecv, 1, 0, {}});
  b.emit({CtrlOp::kJr, 0, 0, {}});

  const auto emit_loop = [&b](Move move) {
    SwitchInstr body;
    body.op = CtrlOp::kBnezd;
    body.reg = 1;
    body.imm = static_cast<std::int32_t>(b.next_index());
    body.moves = {move};
    b.emit(std::move(body));
  };

  sched.recv_desc = static_cast<common::Word>(b.next_index());
  b.emit_route({Move{0, cb, Dir::kProc}});
  b.emit_jump("dispatch");

  sched.stream_out = static_cast<common::Word>(b.next_index());
  emit_loop(Move{0, cb, edge});
  b.emit_jump("dispatch");

  sched.buffer_in = static_cast<common::Word>(b.next_index());
  emit_loop(Move{0, cb, Dir::kProc});
  b.emit_jump("dispatch");

  sched.drain_out = static_cast<common::Word>(b.next_index());
  emit_loop(Move{0, Dir::kProc, edge});
  b.emit_jump("dispatch");

  sched.program = std::make_shared<const sim::SwitchProgram>(b.build());
  return sched;
}

}  // namespace raw::router
