#include "router/line_cards.h"

#include "common/assert.h"

namespace raw::router {

net::Packet make_test_packet(std::uint64_t uid, int src_port, int dst_port,
                             common::ByteCount bytes) {
  const net::Addr src = net::make_addr(
      10, static_cast<std::uint8_t>(128 + src_port),
      static_cast<std::uint8_t>(uid >> 8 & 0xff), static_cast<std::uint8_t>(uid & 0xff));
  const net::Addr dst =
      net::make_addr(10, static_cast<std::uint8_t>(dst_port),
                     static_cast<std::uint8_t>(uid >> 3 & 0xff),
                     static_cast<std::uint8_t>(uid * 7 & 0xff));
  net::Packet p = net::make_packet(uid, src, dst, bytes);
  p.header.identification = static_cast<std::uint16_t>(uid >> 16 & 0xffff);
  net::finalize_checksum(p.header);
  p.input_port = src_port;
  p.output_port = dst_port;
  return p;
}

std::uint64_t uid_of(const net::Ipv4Header& hdr) {
  return static_cast<std::uint64_t>(hdr.identification) << 16 | (hdr.src & 0xffff);
}

int src_port_of(const net::Ipv4Header& hdr) {
  return static_cast<int>((hdr.src >> 16 & 0xff) - 128);
}

InputLineCard::InputLineCard(sim::Channel* to_chip, int port,
                             net::TrafficGen* traffic, PacketLedger* ledger,
                             std::size_t queue_capacity_words)
    : to_chip_(to_chip),
      port_(port),
      traffic_(traffic),
      ledger_(ledger),
      queue_capacity_words_(queue_capacity_words) {
  RAW_ASSERT(to_chip_ != nullptr && traffic_ != nullptr && ledger_ != nullptr);
}

void InputLineCard::generate(sim::Chip& chip) {
  while (!stopped_ && chip.cycle() >= next_arrival_) {
    const net::PacketDesc desc = traffic_->next(port_);
    const std::uint64_t uid = ledger_->next_uid++;
    const common::ByteCount bytes = std::max<common::ByteCount>(desc.bytes, 20);
    const auto words = common::words_for_bytes(bytes);
    // Line spacing: the wire carries this packet for `words` cycles, then
    // idles for the generator's gap.
    next_arrival_ = chip.cycle() + desc.gap_cycles + words;
    ++offered_packets_;
    offered_bytes_ += bytes;
    if (queue_.size() + words > queue_capacity_words_) {
      ++dropped_packets_;  // external drop (§4.4)
      continue;
    }
    const net::Packet p = make_test_packet(uid, port_, desc.dst_port, bytes);
    ledger_->in_flight.emplace(
        uid, PacketLedger::Entry{chip.cycle(), port_, desc.dst_port, bytes});
    for (const common::Word w : net::packet_to_words(p)) queue_.push_back(w);
    queued_packets_.emplace_back(uid, static_cast<std::uint32_t>(words));
    if (ledger_->tracer != nullptr && ledger_->tracer->enabled()) {
      ledger_->tracer->record(uid, chip.cycle(), common::PacketEvent::kArrival,
                              input_card_track(port_),
                              static_cast<std::uint32_t>(bytes));
    }
  }
}

void InputLineCard::step(sim::Chip& chip) {
  generate(chip);
  if (!queue_.empty() && to_chip_->can_write()) {
    if (front_words_sent_ == 0 && ledger_->tracer != nullptr &&
        ledger_->tracer->enabled() && !queued_packets_.empty()) {
      ledger_->tracer->record(queued_packets_.front().first, chip.cycle(),
                              common::PacketEvent::kHeadOfQueue,
                              input_card_track(port_));
    }
    to_chip_->write(queue_.front());
    queue_.pop_front();
    if (!queued_packets_.empty() &&
        ++front_words_sent_ >= queued_packets_.front().second) {
      queued_packets_.pop_front();
      front_words_sent_ = 0;
    }
  }
}

OutputLineCard::OutputLineCard(sim::Channel* from_chip, int port,
                               PacketLedger* ledger)
    : from_chip_(from_chip), port_(port), ledger_(ledger) {
  RAW_ASSERT(from_chip_ != nullptr && ledger_ != nullptr);
}

void OutputLineCard::step(sim::Chip& chip) {
  if (!from_chip_->can_read()) return;
  const common::Word w = from_chip_->read();
  if (current_.empty()) {
    // First word of an IP packet carries total_length in its low half.
    const auto total_length = static_cast<common::ByteCount>(w & 0xffff);
    if (total_length < net::Ipv4Header::kBytes) {
      ++errors_;  // stream desynchronised; drop the word
      return;
    }
    expected_words_ = common::words_for_bytes(total_length);
  }
  current_.push_back(w);
  if (current_.size() == expected_words_) finish_packet(chip);
}

void OutputLineCard::finish_packet(sim::Chip& chip) {
  net::Packet p = net::packet_from_words(std::move(current_));
  current_.clear();
  expected_words_ = 0;

  bool ok = net::checksum_ok(p.header);
  const std::uint64_t uid = uid_of(p.header);
  const int src = src_port_of(p.header);
  const auto it = ledger_->in_flight.find(uid);
  if (it == ledger_->in_flight.end() || src < 0 || src >= 4) {
    ++errors_;
    return;
  }
  const PacketLedger::Entry entry = it->second;
  ledger_->in_flight.erase(it);

  // End-to-end validation: right output port, TTL decremented exactly once,
  // payload untouched.
  if (entry.dst_port != port_ || entry.bytes != p.size_bytes()) ok = false;
  const net::Packet expected =
      make_test_packet(uid, entry.src_port, entry.dst_port, entry.bytes);
  if (p.header.ttl + 1 != expected.header.ttl) ok = false;
  if (p.payload != expected.payload) ok = false;
  if (p.header.src != expected.header.src || p.header.dst != expected.header.dst) {
    ok = false;
  }

  if (!ok) {
    ++errors_;
    return;
  }
  ++delivered_packets_;
  delivered_bytes_ += p.size_bytes();
  ++per_source_[static_cast<std::size_t>(src)];
  const double latency = static_cast<double>(chip.cycle() - entry.created);
  latency_.add(latency);
  latency_hist_.add(latency);
  if (ledger_->tracer != nullptr && ledger_->tracer->enabled()) {
    ledger_->tracer->record(uid, chip.cycle(), common::PacketEvent::kExitChip,
                            output_card_track(port_),
                            static_cast<std::uint32_t>(p.size_bytes()));
  }
}

}  // namespace raw::router
