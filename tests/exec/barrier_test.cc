#include "exec/barrier.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace raw::exec {
namespace {

TEST(ExecBarrier, SinglePartyNeverBlocks) {
  Barrier b(1);
  bool sense = false;
  for (int i = 0; i < 100; ++i) b.arrive_and_wait(sense);
  EXPECT_EQ(b.parties(), 1);
}

// The property that makes the barrier usable as a phase separator: no
// thread observes round k+1 state until every thread has finished round k.
// Each thread bumps a shared counter, crosses the barrier, and checks that
// the counter shows all parties' round-k increments.
TEST(ExecBarrier, SeparatesRoundsAcrossThreads) {
  constexpr int kParties = 4;
  constexpr int kRounds = 500;
  Barrier b(kParties);
  std::atomic<std::uint64_t> counter{0};
  std::atomic<int> violations{0};

  auto body = [&] {
    bool sense = false;
    for (int r = 1; r <= kRounds; ++r) {
      counter.fetch_add(1, std::memory_order_relaxed);
      b.arrive_and_wait(sense);
      const std::uint64_t seen = counter.load(std::memory_order_relaxed);
      if (seen < static_cast<std::uint64_t>(r) * kParties) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      // Second barrier so no thread races ahead into the next increment
      // while a peer is still reading the counter.
      b.arrive_and_wait(sense);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 1; i < kParties; ++i) threads.emplace_back(body);
  body();
  for (auto& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kRounds) * kParties);
}

// Reuse safety: the same Barrier object is crossed back-to-back thousands
// of times (the engine crosses one ~5 times per simulated cycle).
TEST(ExecBarrier, SurvivesRapidReuseWithTwoParties) {
  Barrier b(2);
  constexpr int kRounds = 20000;
  std::atomic<std::uint64_t> sum{0};
  auto body = [&] {
    bool sense = false;
    for (int r = 0; r < kRounds; ++r) {
      sum.fetch_add(1, std::memory_order_relaxed);
      b.arrive_and_wait(sense);
    }
  };
  std::thread t(body);
  body();
  t.join();
  EXPECT_EQ(sum.load(), 2u * kRounds);
}

}  // namespace
}  // namespace raw::exec
