#include "exec/partition.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "sim/coords.h"

namespace raw::exec {
namespace {

// Every tile and every channel must land in exactly one stripe, with
// stripes contiguous and ascending.
void check_covers(const Partition& p, int num_tiles, std::size_t channels) {
  ASSERT_GE(p.workers(), 1);
  EXPECT_EQ(p.stripe(0).tile_begin, 0);
  EXPECT_EQ(p.stripe(0).chan_begin, 0u);
  for (int w = 0; w < p.workers(); ++w) {
    const Stripe& s = p.stripe(w);
    EXPECT_LE(s.tile_begin, s.tile_end);
    EXPECT_LE(s.chan_begin, s.chan_end);
    if (w > 0) {
      EXPECT_EQ(s.tile_begin, p.stripe(w - 1).tile_end);
      EXPECT_EQ(s.chan_begin, p.stripe(w - 1).chan_end);
    }
  }
  EXPECT_EQ(p.stripe(p.workers() - 1).tile_end, num_tiles);
  EXPECT_EQ(p.stripe(p.workers() - 1).chan_end, channels);
}

TEST(ExecPartition, SingleWorkerOwnsEverything) {
  const Partition p = Partition::build(sim::GridShape{4, 4}, 48, 1);
  EXPECT_EQ(p.workers(), 1);
  check_covers(p, 16, 48);
}

TEST(ExecPartition, RowAlignedWhenWorkersDivideRows) {
  const Partition p = Partition::build(sim::GridShape{4, 4}, 48, 2);
  ASSERT_EQ(p.workers(), 2);
  check_covers(p, 16, 48);
  // Two workers on four rows: each stripe boundary falls on a row boundary.
  EXPECT_EQ(p.stripe(0).tile_end % 4, 0);
}

TEST(ExecPartition, RowAlignedWhenWorkersEqualRows) {
  const Partition p = Partition::build(sim::GridShape{4, 4}, 40, 4);
  ASSERT_EQ(p.workers(), 4);
  check_covers(p, 16, 40);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(p.stripe(w).tile_end - p.stripe(w).tile_begin, 4) << w;
  }
}

TEST(ExecPartition, MoreWorkersThanRowsStaysContiguous) {
  const Partition p = Partition::build(sim::GridShape{4, 4}, 48, 8);
  ASSERT_EQ(p.workers(), 8);
  check_covers(p, 16, 48);
  for (int w = 0; w < 8; ++w) {
    EXPECT_GE(p.stripe(w).tile_end - p.stripe(w).tile_begin, 1) << w;
  }
}

TEST(ExecPartition, WorkersClampedToTileCount) {
  const Partition p = Partition::build(sim::GridShape{2, 2}, 8, 64);
  EXPECT_EQ(p.workers(), 4);
  check_covers(p, 4, 8);
}

TEST(ExecPartition, UnevenChannelCountFullyCovered) {
  const Partition p = Partition::build(sim::GridShape{3, 3}, 7, 3);
  ASSERT_EQ(p.workers(), 3);
  check_covers(p, 9, 7);
}

TEST(ExecPartition, ResolveThreadsExplicitWinsOverEnv) {
  ::setenv("RAWSIM_THREADS", "7", 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  ::unsetenv("RAWSIM_THREADS");
}

TEST(ExecPartition, ResolveThreadsReadsEnvWhenZero) {
  ::setenv("RAWSIM_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5);
  ::unsetenv("RAWSIM_THREADS");
}

TEST(ExecPartition, ResolveThreadsDefaultsToSerial) {
  ::unsetenv("RAWSIM_THREADS");
  EXPECT_EQ(resolve_threads(0), 1);
  ::setenv("RAWSIM_THREADS", "not-a-number", 1);
  EXPECT_EQ(resolve_threads(0), 1);
  ::setenv("RAWSIM_THREADS", "0", 1);
  EXPECT_EQ(resolve_threads(0), 1);
  ::setenv("RAWSIM_THREADS", "-2", 1);
  EXPECT_EQ(resolve_threads(0), 1);
  ::unsetenv("RAWSIM_THREADS");
}

}  // namespace
}  // namespace raw::exec
