// Fundamental scalar types shared by every rawswitch library.
#pragma once

#include <cstdint>

namespace raw::common {

/// One 32-bit word, the unit of transfer on all Raw on-chip networks.
using Word = std::uint32_t;

/// Simulation time in processor clock cycles (250 MHz on the Raw prototype).
using Cycle = std::uint64_t;

/// Byte counts (packet and buffer sizes).
using ByteCount = std::uint64_t;

/// Raw prototype clock frequency in Hz (§3.4: 250 MHz).
inline constexpr double kRawClockHz = 250e6;

/// Bytes carried per 32-bit word.
inline constexpr ByteCount kBytesPerWord = 4;

/// Convert a byte length to the number of whole words needed to carry it.
constexpr ByteCount words_for_bytes(ByteCount bytes) {
  return (bytes + kBytesPerWord - 1) / kBytesPerWord;
}

/// Throughput in bits per second given bytes moved over a cycle interval.
constexpr double gbps(ByteCount bytes, Cycle cycles, double clock_hz = kRawClockHz) {
  if (cycles == 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 * clock_hz /
         static_cast<double>(cycles) / 1e9;
}

/// Packets per second given a packet count over a cycle interval.
constexpr double mpps(std::uint64_t packets, Cycle cycles, double clock_hz = kRawClockHz) {
  if (cycles == 0) return 0.0;
  return static_cast<double>(packets) * clock_hz / static_cast<double>(cycles) / 1e6;
}

}  // namespace raw::common
